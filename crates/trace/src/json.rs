//! A hand-rolled, dependency-free JSON codec.
//!
//! The telemetry layer deliberately avoids serde: events are flat and the
//! format is stable, so a small escape-safe writer and a recursive-descent
//! parser cover everything the JSONL sink and the `trace-summary` reader
//! need. The writer is exact for integers (no float round-tripping of
//! counters).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps a `.0` or exponent marker, so the value
                    // re-parses as Float (Display would print huge integral
                    // floats as bare digit runs that overflow Int parsing).
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

/// Escapes `s` as a JSON string (with quotes) into `out`.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse()
                .map(Json::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_flat_objects() {
        let v = Json::obj([
            ("type", Json::Str("message".into())),
            ("round", Json::Int(7)),
            ("ok", Json::Bool(true)),
            ("note", Json::Null),
        ]);
        let line = v.render();
        assert_eq!(
            line,
            r#"{"type":"message","round":7,"ok":true,"note":null}"#
        );
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn escapes_are_round_trip_safe() {
        for s in [
            "plain",
            "quo\"te",
            "back\\slash",
            "new\nline",
            "tab\t",
            "ctrl\u{1}",
            "π ≈ 3",
        ] {
            let v = Json::Obj(vec![("label".into(), Json::Str(s.into()))]);
            let parsed = Json::parse(&v.render()).unwrap();
            assert_eq!(parsed.get("label").unwrap().as_str().unwrap(), s, "{s:?}");
        }
    }

    #[test]
    fn parses_nested_structures_and_numbers() {
        let v = Json::parse(r#" {"a": [1, -2, 3.5], "b": {"c": "d"}, "e": 18446744073709551615} "#)
            .unwrap();
        let arr = match v.get("a").unwrap() {
            Json::Arr(items) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Json::Int(-2));
        assert_eq!(arr[2].as_f64(), Some(3.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert_eq!(v.get("e").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "[1,]",
            "{\"a\":1,}",
            "nul",
            "\"unterminated",
            "1 2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_counters_are_exact() {
        for n in [0u64, 1, u64::MAX, 1 << 53, (1 << 53) + 1] {
            let line = Json::Int(i128::from(n)).render();
            assert_eq!(Json::parse(&line).unwrap().as_u64(), Some(n));
        }
    }
}
