//! The lower-bound constructions of Sections 5–6: build the disjointness
//! gadgets, watch the diameter encode `DISJ(x, y)`, and price the two-party
//! simulation.
//!
//! Run with: `cargo run --release --example lower_bound_gadgets`

use congest_diameter::prelude::*;

use commcc::bit_gadget::BitGadgetReduction;
use commcc::hw::HwReduction;
use commcc::simulation::{decide_disj_via_diameter, TwoPartyPlan};
use commcc::stretch::StretchedReduction;
use commcc::{bounds, disj};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Theorem 8 / Figure 4: diameter 2 vs 3 encodes DISJ on Θ(n²) bits.
    println!("Theorem 8 (HW12 gadget, Figure 4): k = s², b = Θ(n), gap 2 vs 3");
    let red = HwReduction::new(8);
    for disjoint in [true, false] {
        let (x, y) = disj::random_instance(red.k(), disjoint, 3);
        let g = red.build(&x, &y);
        println!(
            "  DISJ = {:<5} → diameter {}  (n = {}, cut = {} edges)",
            disjoint,
            g.diameter().unwrap(),
            red.num_nodes(),
            red.b()
        );
    }
    println!(
        "  ⇒ Theorem 2 lower bound: Ω̃(√(k/b)) = Ω̃(√n) ≈ {:.0} rounds at n = {}\n",
        bounds::theorem10_rounds_lower_bound((red.k()) as u64, red.b() as u64),
        red.num_nodes()
    );

    // --- Theorem 9 gadget: sparse cut.
    println!("Theorem 9 (bit gadget): k = Θ(n), b = Θ(log n), gap 4 vs 5");
    let base = BitGadgetReduction::new(32);
    for disjoint in [true, false] {
        let (x, y) = disj::random_instance(base.k(), disjoint, 9);
        let g = base.build(&x, &y);
        println!(
            "  DISJ = {:<5} → diameter {}  (n = {}, cut = {} edges)",
            disjoint,
            g.diameter().unwrap(),
            base.num_nodes(),
            base.b()
        );
    }

    // --- Figure 8: stretch the cut to dial the diameter up.
    println!("\nFigure 8: stretching each cut edge through d dummies → gap d+4 vs d+5");
    for d in [2usize, 6, 12] {
        let red = StretchedReduction::new(base, d);
        let (x0, y0) = disj::random_instance(base.k(), true, 1);
        let (x1, y1) = disj::random_instance(base.k(), false, 1);
        let g0 = red.build(&x0, &y0);
        let g1 = red.build(&x1, &y1);
        println!(
            "  d = {d:>2}: n' = {:>4}, diameters {} (disjoint) vs {} (intersecting)",
            red.num_nodes(),
            g0.diameter().unwrap(),
            g1.diameter().unwrap(),
        );
    }

    // --- Theorems 10/11 end to end: decide DISJ by *running* a real
    // distributed diameter computation on G'(x, y) and pricing its
    // two-party simulation.
    println!("\nTheorem 10/11 pipeline on G'(x, y) (d = 6):");
    let red = StretchedReduction::new(base, 6);
    for disjoint in [true, false] {
        let (x, y) = disj::random_instance(base.k(), disjoint, 4);
        let g = red.build(&x, &y);
        let cfg = Config::for_graph(&g.graph);
        let out = decide_disj_via_diameter(&red, &x, &y, 64, cfg)?;
        println!(
            "  DISJ = {:<5} recovered: {:<5} | r = {} rounds → {} messages, {} qubits",
            disjoint,
            out.answer,
            out.distributed_rounds,
            out.plan.messages(),
            out.plan.total_qubits()
        );
    }

    // --- The Theorem 3 landscape: Ω̃(√(nD)/s) for s-qubit-memory nodes.
    println!("\nTheorem 3: round lower bounds Ω̃(√(nD)/s) at n = 4096:");
    println!("  {:>6} {:>8} {:>14}", "D", "s (mem)", "LB rounds");
    for &(d, s) in &[(16u64, 16u64), (16, 256), (256, 16), (256, 256)] {
        println!(
            "  {:>6} {:>8} {:>14.0}",
            d,
            s,
            bounds::theorem3_rounds_lower_bound(4096, d, s)
        );
    }

    // Show the block schedule shape of the simulation (Figures 6-7).
    let plan = TwoPartyPlan::new(600, 100, 12, 64);
    println!(
        "\nFigure 6/7 schedule for r = 600, d = 100: {} alternating blocks → {} messages",
        plan.turns(),
        plan.messages()
    );
    Ok(())
}
