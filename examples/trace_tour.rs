//! Tour of the telemetry layer: run the Section 3.1 simple quantum exact
//! algorithm on a small torus with an in-memory [`trace::Recorder`]
//! installed, aggregate the event stream, and cross-check the per-phase
//! breakdown against the run's own ledgers — the trace is an observer and
//! must agree with the algorithm's accounting to the round.
//!
//! Run with: `cargo run --release --example trace_tour`

use congest_diameter::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = graphs::generators::torus(5, 5);
    let cfg = Config::for_graph(&g);
    println!(
        "network: 5x5 torus, {} nodes, {} edges",
        g.len(),
        g.num_edges()
    );

    // Install a recorder for the duration of the run. Tracing is strictly
    // opt-in: without this guard the same call emits nothing and takes the
    // zero-overhead path.
    let recorder = trace::Recorder::shared();
    let run = {
        let _guard = trace::install(recorder.clone());
        quantum_diameter::exact_simple::diameter(&g, ExactParams::new(3), cfg)?
    };
    let events = recorder.borrow_mut().take();
    println!(
        "diameter: {} ({} trace events captured)\n",
        run.value,
        events.len()
    );

    // Aggregate the raw stream. `Summary` is itself a `TraceSink`, so this
    // could equally have been installed directly instead of the recorder.
    let summary = trace::Summary::from_events(&events);
    println!("{summary}");

    // Cross-check: every phase span the trace saw must match the run's own
    // ledgers, and the charged oracle applications must re-add to the
    // Theorem 7 round conversion.
    println!("\ncross-check against DiameterRun:");
    let ledgered =
        run.init_ledger.total_rounds() + run.probe_ledger.total_rounds() + run.quantum_rounds;
    assert_eq!(summary.total_phase_rounds(), ledgered);
    println!(
        "  phase spans: {} rounds == init {} + probes {} + quantum {}",
        summary.total_phase_rounds(),
        run.init_ledger.total_rounds(),
        run.probe_ledger.total_rounds(),
        run.quantum_rounds
    );

    assert_eq!(summary.oracle_setup_ops, run.oracle.setup_ops());
    assert_eq!(summary.oracle_evaluation_ops, run.oracle.evaluation_ops());
    assert_eq!(
        summary.oracle_setup_rounds + summary.oracle_evaluation_rounds,
        run.quantum_rounds
    );
    println!(
        "  oracle events: {} setup + {} evaluation applications, {} rounds total",
        summary.oracle_setup_ops,
        summary.oracle_evaluation_ops,
        summary.oracle_setup_rounds + summary.oracle_evaluation_rounds
    );

    // Per-message events reconcile with the physically simulated (non-
    // derived) spans only — derived spans charge rounds without traffic.
    assert_eq!(
        summary.messages_delivered,
        summary.simulated_phase_messages()
    );
    assert_eq!(summary.round_ticks, summary.simulated_phase_rounds());
    println!(
        "  traffic: {} messages / {} round ticks, all inside simulated spans",
        summary.messages_delivered, summary.round_ticks
    );

    println!("\nall trace aggregates agree with the run's own accounting.");
    Ok(())
}
