//! Domain scenario: a peer-to-peer overlay operator tracks the network
//! diameter as peers churn.
//!
//! The diameter bounds worst-case broadcast latency, so the overlay
//! re-measures it after every churn epoch. At moderate sizes the operator
//! uses the classical HPRW `3/2`-approximation (`Õ(√n + D)` rounds — far
//! below the exact `Θ(n)` sweep); the exact quantum measurement (Theorem 1)
//! is priced per epoch and its break-even overlay size is extrapolated from
//! the measured constants.
//!
//! Run with: `cargo run --release --example overlay_monitor`

use classical::hprw::{self, HprwParams};
use congest_diameter::prelude::*;
use graphs::GraphBuilder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One churn epoch: rewire a fraction of the overlay's links.
fn churn(g: &graphs::Graph, fraction: f64, rng: &mut StdRng) -> graphs::Graph {
    let n = g.len();
    let mut b = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        if rng.random_bool(fraction) {
            // Drop this link; its owner dials a random fresh peer instead.
            let mut w = rng.random_range(0..n);
            let mut tries = 0;
            while (w == u.index() || b.has_edge(u.index(), w)) && tries < 10 {
                w = rng.random_range(0..n);
                tries += 1;
            }
            if w != u.index() {
                b.edge_if_absent(u.index(), w);
            }
        } else {
            b.edge_if_absent(u.index(), v.index());
        }
    }
    // Keep the overlay connected (bootstrap server re-links stragglers).
    let built = b.build();
    if graphs::traversal::is_connected(&built) {
        return built;
    }
    let (labels, count) = graphs::traversal::connected_components(&built);
    let mut b = GraphBuilder::new(n);
    for (u, v) in built.edges() {
        b.edge(u.index(), v.index());
    }
    let mut reps = vec![usize::MAX; count];
    for (v, &c) in labels.iter().enumerate() {
        if reps[c] == usize::MAX {
            reps[c] = v;
        }
    }
    for w in reps.windows(2) {
        b.edge_if_absent(w[0], w[1]);
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300;
    let epochs = 6;
    let mut rng = StdRng::seed_from_u64(2026);
    let mut overlay = graphs::generators::random_sparse(n, 6.0, 11);

    println!(
        "overlay: {n} peers, ~{} links, churn 15%/epoch",
        overlay.num_edges()
    );
    println!(
        "\n{:>5} {:>4} {:>11} {:>11} {:>11} {:>13}",
        "epoch", "D", "approx D̄", "3/2-approx", "exact (n)", "exact quantum"
    );

    let mut q_consts = Vec::new();
    for epoch in 0..epochs {
        let cfg = Config::for_graph(&overlay);
        let truth = graphs::metrics::diameter(&overlay).expect("connected");

        // The operator's routine measurement: classical 3/2-approximation.
        let approx = hprw::approx_diameter(&overlay, HprwParams::classical(n, epoch), cfg)?;
        assert!(approx.estimate <= truth && approx.estimate >= (2 * truth) / 3);

        // Exact sweeps for comparison.
        let exact_c = classical::apsp::exact_diameter(&overlay, cfg)?;
        let exact_q = quantum_diameter::exact::diameter(&overlay, ExactParams::new(epoch), cfg)?;
        assert_eq!(exact_c.diameter, truth);
        assert_eq!(exact_q.value, truth);
        q_consts.push(exact_q.rounds() as f64 / ((n as f64) * f64::from(truth.max(1))).sqrt());

        println!(
            "{:>5} {:>4} {:>11} {:>11} {:>11} {:>13}",
            epoch,
            truth,
            approx.estimate,
            approx.rounds(),
            exact_c.rounds(),
            exact_q.rounds()
        );

        overlay = churn(&overlay, 0.15, &mut rng);
    }

    // Where would the exact quantum measurement beat the exact classical
    // sweep? Fit rounds_q ≈ C·√(nD) from the measured epochs and solve
    // against the deterministic classical schedule.
    let c_fit = q_consts.iter().sum::<f64>() / q_consts.len() as f64;
    let d_typical = 7u64;
    let mut n_star = 1u64 << 10;
    while (c_fit * ((n_star * d_typical) as f64).sqrt()) as u64
        > classical::apsp::predicted_rounds(n_star, d_typical)
        && n_star < 1 << 40
    {
        n_star *= 2;
    }
    println!("\nroutine monitoring: the 3/2-approximation answers in Õ(√n + D) rounds,");
    println!("well under the exact Θ(n) sweep at every epoch.");
    println!(
        "exact quantum measurement: rounds ≈ {c_fit:.0}·√(nD); with D ≈ {d_typical} it \
         overtakes the classical exact sweep near n ≈ {n_star} peers."
    );
    Ok(())
}
