//! The 3/2-approximation trade-off (Table 1 row 3 / Theorem 4): classical
//! HPRW at `Õ(√n + D)` rounds vs the quantum variant at `Õ(∛(nD) + D)`.
//!
//! Run with: `cargo run --release --example approx_tradeoff`

use congest_diameter::prelude::*;

use classical::hprw::{self, HprwParams};
use quantum_diameter::approx;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>4} {:>6} {:>10} {:>12} {:>12} {:>8}",
        "n", "D", "D̄", "exact(n)", "classical", "quantum", "ok?"
    );
    for &n in &[96usize, 192, 384, 768] {
        let g = graphs::generators::random_sparse(n, 7.0, 3);
        let cfg = Config::for_graph(&g);
        let d = graphs::metrics::diameter(&g).expect("connected");

        let exact_rounds = classical::apsp::exact_diameter(&g, cfg)?.rounds();
        let c = hprw::approx_diameter(&g, HprwParams::classical(n, 5), cfg)?;
        let q = approx::diameter(&g, ApproxParams::new(5), cfg)?;

        // Both must be valid 3/2-approximations: D̄ ≤ D ≤ (3/2)·D̄.
        let ok = |est: graphs::Dist| est <= d && est >= (2 * d) / 3;
        assert!(ok(c.estimate), "classical estimate out of range");
        assert!(ok(q.estimate), "quantum estimate out of range");

        println!(
            "{:>6} {:>4} {:>6} {:>10} {:>12} {:>12} {:>8}",
            n,
            d,
            q.estimate,
            exact_rounds,
            c.rounds(),
            q.rounds(),
            "yes"
        );
    }

    println!("\nEstimates D̄ always satisfy ⌊2D/3⌋ ≤ D̄ ≤ D; both approximations run");
    println!("far below the exact Θ(n) baseline, and the quantum phase replaces the");
    println!("classical O(s + D) eccentricity sweep with Õ(√(sD)) amplitude");
    println!("amplification (s = Θ(n^⅔ D^{{-⅓}}), Theorem 4).");

    // Ablation: sweep s to expose the n/s vs √(sD) trade-off of Figure 3.
    let n = 384;
    let g = graphs::generators::random_sparse(n, 7.0, 3);
    let cfg = Config::for_graph(&g);
    println!("\nCluster-size sweep at n = {n} (Figure 3 phases):");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "s", "prep", "quantum", "total"
    );
    for &s in &[4usize, 16, 48, 96, 192, 384] {
        let q = approx::diameter(&g, ApproxParams::new(5).with_s(s), cfg)?;
        println!(
            "{:>6} {:>12} {:>12} {:>12}",
            s,
            q.prep_ledger.total_rounds(),
            q.quantum_rounds,
            q.rounds()
        );
    }
    Ok(())
}
