//! The quantum–classical separation of Table 1: sweep the network size at
//! near-constant diameter and watch classical `Θ(n)` rounds diverge from
//! quantum `Õ(√(nD))`.
//!
//! Run with: `cargo run --release --example separation`

use congest_diameter::prelude::*;

fn mean_quantum_rounds(g: &graphs::Graph, cfg: Config, seeds: std::ops::Range<u64>) -> f64 {
    let len = (seeds.end - seeds.start) as f64;
    let total: u64 = seeds
        .map(|s| {
            quantum_diameter::exact::diameter(g, ExactParams::new(s), cfg)
                .expect("quantum run")
                .rounds()
        })
        .sum();
    total as f64 / len
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Sparse random networks, average degree 8 (diameter stays small):\n");
    println!(
        "{:>6} {:>4} {:>12} {:>14} {:>14} {:>9}",
        "n", "D", "classical", "quantum (avg)", "LB Ω̃(√n)", "speedup"
    );

    let mut prev: Option<(f64, f64, f64)> = None;
    for &n in &[64usize, 128, 256, 512, 1024] {
        let g = graphs::generators::random_sparse(n, 8.0, 1);
        let cfg = Config::for_graph(&g);
        let d = graphs::metrics::diameter(&g).expect("connected");
        let classical = classical::apsp::exact_diameter(&g, cfg)?.rounds() as f64;
        let quantum = mean_quantum_rounds(&g, cfg, 0..5);
        let lb = commcc::bounds::theorem2_rounds_lower_bound(n as u64);
        println!(
            "{:>6} {:>4} {:>12.0} {:>14.0} {:>14.0} {:>8.1}x",
            n,
            d,
            classical,
            quantum,
            lb,
            classical / quantum
        );
        if let Some((pn, pc, pq)) = prev {
            let growth = (n as f64 / pn).ln();
            let c_slope = (classical / pc).ln() / growth;
            let q_slope = (quantum / pq).ln() / growth;
            println!(
                "{:>6} local log-log slope: classical {:.2} (≈1), quantum {:.2} (≈0.5)",
                "", c_slope, q_slope
            );
        }
        prev = Some((n as f64, classical, quantum));
    }

    println!("\nThe classical curve grows like n (slope ≈ 1); the quantum curve like");
    println!("√(nD) (slope ≈ 0.5 at constant D) — the Theorem 1 separation, bounded");
    println!("below by the unconditional Ω̃(√n) of Theorem 2.");
    Ok(())
}
