//! Quickstart: compute a network's diameter classically and quantumly, and
//! compare round counts.
//!
//! Run with: `cargo run --release --example quickstart`

use congest_diameter::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 200-node sparse random network (average degree ≈ 6).
    let g = graphs::generators::random_sparse(200, 6.0, 42);
    let cfg = Config::for_graph(&g);
    println!("network: {} nodes, {} edges", g.len(), g.num_edges());

    // Ground truth from the centralized reference algorithm.
    let reference = graphs::metrics::diameter(&g).expect("graph is connected");
    println!("reference diameter: {reference}");

    // Classical exact computation: Θ(n) rounds (PRT12/HW12 baseline).
    let classical = classical::apsp::exact_diameter(&g, cfg)?;
    println!("\nclassical exact (Table 1 row 1):");
    println!("{}", classical.ledger);
    assert_eq!(classical.diameter, reference);

    // Quantum exact computation: Õ(√(nD)) rounds (Theorem 1).
    let quantum = quantum_diameter::exact::diameter(&g, ExactParams::new(7), cfg)?;
    assert_eq!(quantum.value, reference);
    println!("\nquantum exact (Theorem 1):");
    println!(
        "  initialization rounds: {}",
        quantum.init_ledger.total_rounds()
    );
    println!(
        "  oracle calls: {} (setup {}, evaluation {})",
        quantum.oracle.total_ops(),
        quantum.oracle.setup_ops(),
        quantum.oracle.evaluation_ops()
    );
    println!(
        "  per-op schedule: setup {} rounds, evaluation {} rounds",
        quantum.oracle_schedule.setup_rounds, quantum.oracle_schedule.evaluation_rounds
    );
    println!("  quantum-phase rounds: {}", quantum.quantum_rounds);
    println!(
        "  memory: {} qubits/node, {} at the leader",
        quantum.memory.per_node_qubits, quantum.memory.leader_qubits
    );

    println!(
        "\nTOTAL: classical {} rounds vs quantum {} rounds",
        classical.rounds(),
        quantum.rounds()
    );

    // The classical cost grows like n, the quantum like √(nD); with the real
    // constants of Dürr–Høyer search the curves cross at large n.
    // Extrapolate both (the classical schedule is deterministic; the quantum
    // cost scales as √n at fixed D).
    let n = g.len() as f64;
    let d = quantum.d as u64;
    let q_const = quantum.rounds() as f64 / n.sqrt();
    println!("\nExtrapolation at fixed D = {}:", 2 * d);
    println!("{:>10} {:>14} {:>14}", "n", "classical", "quantum (fit)");
    for scale in [1u64, 8, 64, 512, 4096] {
        let big_n = (n as u64) * scale;
        let c = classical::apsp::predicted_rounds(big_n, d as u64);
        let q = q_const * (big_n as f64).sqrt();
        println!(
            "{:>10} {:>14} {:>14.0}{}",
            big_n,
            c,
            q,
            if q < c as f64 {
                "  ← quantum wins"
            } else {
                ""
            }
        );
    }
    Ok(())
}
