//! Network census: one pass over a topology zoo computing every structural
//! quantity this workspace can produce distributedly — diameter, radius,
//! girth (the full PRT12 pair), a 3/2-approximation, and per-node source
//! detection — with round costs side by side.
//!
//! Run with: `cargo run --release --example network_census`

use congest_diameter::prelude::*;

use classical::hprw::{self, HprwParams};
use classical::{apsp, girth, source_detection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo: Vec<(&str, graphs::Graph)> = vec![
        ("ring (64)", graphs::generators::cycle(64)),
        ("grid 8x8", graphs::generators::grid(8, 8)),
        ("hypercube 6", graphs::generators::hypercube(6)),
        ("torus 8x8", graphs::generators::torus(8, 8)),
        ("barbell 20+24", graphs::generators::barbell(20, 24)),
        (
            "sparse random",
            graphs::generators::random_sparse(64, 5.0, 3),
        ),
        ("random tree", graphs::generators::random_tree(64, 9)),
    ];

    println!(
        "{:>15} {:>4} {:>4} {:>6} {:>5} {:>9} {:>9} {:>10}",
        "topology", "D", "rad", "girth", "D̄", "exact rds", "girth rds", "approx rds"
    );
    for (name, g) in &zoo {
        let cfg = Config::for_graph(g);
        let exact = apsp::exact_diameter(g, cfg)?;
        let gir = girth::compute(g, cfg)?;
        let approx = hprw::approx_diameter(g, HprwParams::classical(g.len(), 1), cfg)?;

        // Cross-check against centralized references.
        assert_eq!(Some(exact.diameter), graphs::metrics::diameter(g));
        assert_eq!(Some(exact.radius), graphs::metrics::radius(g));
        assert_eq!(gir.girth, graphs::metrics::girth(g));

        println!(
            "{:>15} {:>4} {:>4} {:>6} {:>5} {:>9} {:>9} {:>10}",
            name,
            exact.diameter,
            exact.radius,
            gir.girth.map_or("—".into(), |x| x.to_string()),
            approx.estimate,
            exact.rounds(),
            gir.rounds(),
            approx.rounds(),
        );
    }

    // Source detection (LP13): landmark distances for compact routing.
    println!("\nLP13 (S, γ, σ)-source detection on the 8x8 grid:");
    let g = graphs::generators::grid(8, 8);
    let cfg = Config::for_graph(&g);
    let landmarks = [
        NodeId::new(0),
        NodeId::new(7),
        NodeId::new(56),
        NodeId::new(63),
    ];
    let out = source_detection::detect(&g, &landmarks, 2, 14, cfg)?;
    println!(
        "  every node knows its 2 nearest corners in {} rounds (γ + σ + 2)",
        out.stats.rounds
    );
    let center = 3 * 8 + 3; // node (3,3)
    println!(
        "  e.g. node (3,3): {:?}",
        out.lists[center]
            .iter()
            .map(|&(d, s)| format!("corner {s} at distance {d}"))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        out.lists,
        source_detection::reference(&g, &landmarks, 2, 14)
    );

    println!("\nall quantities verified against centralized references.");
    Ok(())
}
