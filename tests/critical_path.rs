//! Critical-path profiler semantics against the paper's Figure 2: the
//! longest chain of causally ordered message deliveries lower-bounds the
//! rounds *any* schedule needs for a run's information flow, and the
//! `2τ′(u)` wave schedule upper-bounds it by the scheduled duration. On
//! hand-analyzable workloads the chain length is exact, so these tests pin
//! equalities, not just inequalities.

use congest_diameter::prelude::*;

use classical::waves;
use congest_diameter::cli;

/// A single wave from one end of a path is a pure relay chain: the causal
/// depth is exactly the source's eccentricity `D = n − 1` plus one — the
/// far endpoint, like every adopter, rebroadcasts on adoption, and that
/// final echo back along the last edge is itself a causally dependent
/// delivery.
#[test]
fn single_wave_on_a_path_has_depth_exactly_d_plus_echo() {
    let n = 64;
    let g = graphs::generators::path(n);
    let cfg = Config::for_graph(&g).with_critical_path(true);
    let duration = 2 + n as u64 + 2;
    let out = waves::run(&g, &[(NodeId::new(0), 0)], duration, cfg).unwrap();
    assert_eq!(out.global_max(), (n - 1) as u32);
    assert_eq!(
        out.stats.critical_depth, n as u64,
        "a relay wave's causal chain is one hop per geodesic edge + the echo"
    );
}

/// The full Figure-2 schedule (every node a source, τ′ from the DFS order
/// of the path): the longest chain is bracketed by the diameter below and
/// the scheduled `2·max τ′ + ecc` duration above, and the phase still
/// computes `max ecc = D`.
#[test]
fn staggered_waves_depth_is_between_d_and_the_scheduled_duration() {
    let n = 48usize;
    let g = graphs::generators::path(n);
    let d = (n - 1) as u64;
    // On a path, the DFS tour positions are the node indices; Lemma 2
    // (`d(u, v) ≤ τ'(v) − τ'(u)`) holds with equality.
    let sources: Vec<(NodeId, u64)> = (0..n).map(|v| (NodeId::new(v), v as u64)).collect();
    let duration = 2 * d + d + 2;
    let cfg = Config::for_graph(&g).with_critical_path(true);
    let out = waves::run(&g, &sources, duration, cfg).unwrap();
    out.verify_complete(&sources).unwrap();
    assert_eq!(out.global_max(), d as u32);
    assert!(
        out.stats.critical_depth >= d,
        "some wave must relay across a geodesic: depth {} < D {d}",
        out.stats.critical_depth
    );
    assert!(
        out.stats.critical_depth <= duration,
        "a causal chain cannot outrun the schedule: depth {} > duration {duration}",
        out.stats.critical_depth
    );
}

/// The profiler's depth is a *protocol* observable: byte-identical across
/// worker shards and scheduling modes, like every other `RunStats` field
/// it now travels with.
#[test]
fn critical_depth_is_identical_across_shards_and_scheduling() {
    let g = graphs::generators::random_connected(40, 0.12, 9);
    let sources: Vec<(NodeId, u64)> = vec![(NodeId::new(0), 0)];
    let base = Config::for_graph(&g).with_critical_path(true);
    let duration = 2 + g.len() as u64;
    let reference = waves::run(&g, &sources, duration, base).unwrap();
    assert!(reference.stats.critical_depth > 0);
    for shards in [2usize, 4] {
        for sched in [Scheduling::Dense, Scheduling::ActiveSet] {
            let cfg = base.with_shards(shards).with_scheduling(sched);
            let out = waves::run(&g, &sources, duration, cfg).unwrap();
            assert_eq!(
                out.stats.critical_depth, reference.stats.critical_depth,
                "depth diverged at shards={shards} sched={sched:?}"
            );
        }
    }
}

/// The classical O(n) pipeline's DFS token walk is itself a causal chain
/// of `2(n − 1)` hops (the token crosses every tree edge twice), so the
/// registry's critical-path gauge — the maximum over all phases — must
/// reach it, and can never exceed the total simulated rounds.
#[test]
fn apsp_dfs_walk_drives_the_registry_gauge_past_2n() {
    let n = 96usize;
    let g = graphs::generators::path(n);
    let cfg = Config::for_graph(&g).with_critical_path(true);
    let registry = metrics::Registry::shared();
    let out = {
        let _meter = metrics::install(registry.clone());
        classical::apsp::exact_diameter(&g, cfg).unwrap()
    };
    assert_eq!(out.diameter, (n - 1) as u32);
    let depth = registry
        .borrow()
        .gauge(metrics::names::CRITICAL_PATH_DEPTH)
        .expect("profiler gauge exported") as u64;
    assert!(
        depth >= 2 * (n as u64 - 1),
        "DFS token chain missing: gauge {depth} < 2(n-1) = {}",
        2 * (n - 1)
    );
    assert!(
        depth <= out.rounds(),
        "a causal chain cannot exceed the simulated rounds: {depth} > {}",
        out.rounds()
    );
}

/// `qdiam report` end-to-end on a waves-bearing run (ISSUE 10 acceptance):
/// the markdown report's critical-path depth must sit within the
/// documented Figure-2 slack — at least the diameter, at most the
/// simulated rounds — and every schema section must be present.
#[test]
fn report_critical_path_matches_figure_2_bound_on_a_real_run() {
    let n = 512usize;
    let dir = std::env::temp_dir().join(format!("qd-critpath-report-{}", std::process::id()));
    let arg_strings: Vec<String> = format!(
        "report classical --family path --n {n} --out {}",
        dir.display()
    )
    .split_whitespace()
    .map(String::from)
    .collect();
    let cli::Command::Report(opts) = cli::parse_command(&arg_strings).unwrap() else {
        panic!("expected report command");
    };
    let console = cli::report(&opts).unwrap();
    assert!(
        console.contains(&format!("diameter: {}", n - 1)),
        "{console}"
    );
    let md = std::fs::read_to_string(dir.join(format!("REPORT_classical_path_n{n}.md"))).unwrap();
    for section in [
        "## Run summary",
        "## Critical path",
        "## Timeline",
        "## Cost totals",
        "## Recovery",
    ] {
        assert!(md.contains(section), "report missing {section:?}:\n{md}");
    }
    let field = |marker: &str| -> u64 {
        md.lines()
            .find_map(|l| l.strip_prefix(marker))
            .unwrap_or_else(|| panic!("missing {marker:?} in report:\n{md}"))
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let depth = field("- longest causal message chain:");
    let rounds = field("- simulated rounds:");
    let d = (n - 1) as u64;
    assert!(
        depth >= d,
        "chain {depth} shorter than the diameter {d}: the waves cannot have propagated"
    );
    assert!(
        depth <= rounds,
        "chain {depth} exceeds the simulated rounds {rounds}: \
         the 2τ′ schedule bound is violated"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
