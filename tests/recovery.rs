//! Integration tests for the self-healing drivers (`classical::recovery`
//! and `quantum_diameter::recovery`).
//!
//! The recovery contract extends the fault contract of
//! `failure_injection.rs` from *correct-or-detected* to
//! *correct-or-detected-or-recovered*:
//!
//! * Recovery is **deterministic**: retry fates and reseeded plans are
//!   pure functions of the seed, so a recovering run — result, recovery
//!   stats, and full trace stream — is byte-identical across shard
//!   counts, `Dense`/`ActiveSet` scheduling, and fast-forward on/off.
//! * Checkpoint/restart resumes a dropped eccentricity wave from the
//!   last completed segment boundary, never from round 0.
//! * Partial-network semantics answer for the largest surviving
//!   component, matching a centrally carved reference.
//! * A clean (unhealed, full-network) run is exactly as correct as the
//!   fail-stop driver; a healed run may additionally end in typed
//!   detection once every recovery avenue is exhausted.

use proptest::prelude::*;

use congest::{FaultPlan, RecoveryPolicy, RecoveryStats};
use congest_diameter::prelude::*;
use quantum_diameter::recovery as qrecovery;
use quantum_diameter::QdError;

/// Shard counts exercised by the equivalence matrix, plus any extra
/// count injected via `QD_TEST_SHARDS` (used by `check.sh`).
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    if let Some(k) = std::env::var("QD_TEST_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if k >= 1 && !counts.contains(&k) {
            counts.push(k);
        }
    }
    counts
}

/// Everything the determinism contract covers about one recovering run,
/// in a directly comparable shape (the ledger is summarized because its
/// phase stats are already covered by the trace stream).
type RunKey = Result<
    (
        graphs::Dist,
        Vec<graphs::Dist>,
        RecoveryStats,
        Option<(Vec<NodeId>, usize)>,
    ),
    String,
>;

/// Runs the recovering classical driver under a trace recorder,
/// returning the comparable result key, the fault tally, and the full
/// event stream.
fn recovering_run(g: &Graph, cfg: Config) -> (RunKey, Vec<trace::TraceEvent>) {
    let recorder = trace::Recorder::shared();
    let key = {
        let _guard = trace::install(recorder.clone());
        match classical::recovery::exact_diameter_recovering(g, cfg) {
            Ok(out) => Ok((
                out.outcome.diameter,
                out.outcome.eccentricities,
                out.recovery,
                out.surviving.map(|s| (s.nodes, s.excluded)),
            )),
            Err(e) => Err(e.to_string()),
        }
    };
    let events = recorder.borrow_mut().take();
    (key, events)
}

/// A connected random graph for the recovery properties. Kept small:
/// each proptest case runs the full recovering APSP driver up to
/// `4 × |shard_counts()| + 1` times.
fn arb_graph() -> impl Strategy<Value = graphs::Graph> {
    (6usize..20, 0u64..1_000_000)
        .prop_map(|(n, seed)| graphs::generators::random_connected(n, 0.15, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The recovering driver — retries, retransmissions, checkpoint
    /// restarts, partial re-roots and all — is byte-identical across
    /// shard counts × scheduling modes × fast-forward, whether it heals,
    /// answers clean, or exhausts its budget into typed detection.
    #[test]
    fn recovering_runs_replay_identically(
        g in arb_graph(),
        fseed in 0u64..1_000,
        crash in any::<bool>(),
    ) {
        let mut plan = FaultPlan::new(fseed).with_drop(0.004);
        if crash {
            plan = plan.with_crash(fseed as usize % g.len(), fseed % 3);
        }
        let policy = RecoveryPolicy::standard().with_checkpoint(5);
        let base = Config::for_graph(&g).with_faults(plan).with_recovery(policy);

        let (key, events) = recovering_run(&g, base.with_scheduling(Scheduling::Dense));
        let events = trace::expand_round_skips(events);
        for shards in shard_counts() {
            for scheduling in [Scheduling::Dense, Scheduling::ActiveSet] {
                for fast_forward in [true, false] {
                    let cfg = base
                        .with_shards(shards)
                        .with_scheduling(scheduling)
                        .with_fast_forward(fast_forward);
                    let (key_k, events_k) = recovering_run(&g, cfg);
                    let events_k = trace::expand_round_skips(events_k);
                    let ctx = format!(
                        "{shards} shards, {scheduling:?}, fast_forward={fast_forward}"
                    );
                    prop_assert_eq!(&key_k, &key, "result diverged: {}", ctx);
                    prop_assert_eq!(&events_k, &events, "trace diverged: {}", ctx);
                }
            }
        }
    }

    /// A passive policy is an identity: the recovering driver returns
    /// exactly the fail-stop driver's answer (or error), reports clean
    /// stats, and never claims partial semantics.
    #[test]
    fn passive_policy_matches_the_fail_stop_driver(
        g in arb_graph(),
        fseed in 0u64..1_000,
    ) {
        let cfg = Config::for_graph(&g).with_faults(FaultPlan::new(fseed).with_drop(0.004));
        prop_assert!(cfg.recovery().is_passive());
        let healed = classical::recovery::exact_diameter_recovering(&g, cfg);
        let failstop = classical::apsp::exact_diameter(&g, cfg);
        match (healed, failstop) {
            (Ok(h), Ok(f)) => {
                prop_assert_eq!(h.outcome.diameter, f.diameter);
                prop_assert_eq!(h.outcome.eccentricities, f.eccentricities);
                prop_assert!(h.recovery.is_clean());
                prop_assert!(h.surviving.is_none());
            }
            (Err(he), Err(fe)) => prop_assert_eq!(he.to_string(), fe.to_string()),
            (h, f) => {
                return Err(TestCaseError::fail(format!(
                    "passive recovery diverged: {h:?} vs fail-stop {f:?}"
                )))
            }
        }
    }
}

/// Regression: a wave segment dropped mid-schedule restarts from its own
/// checkpoint boundary — completed segments are never re-executed, so
/// the schedule never rewinds to round 0.
///
/// The seed is pinned to a run (found by sweep) where segment 1 loses a
/// wave and is restarted once, while segment 0 completed on the first
/// try; determinism (see `recovering_runs_replay_identically`) keeps the
/// pin stable.
#[test]
fn checkpoint_restart_resumes_from_the_last_segment_boundary() {
    let g = graphs::generators::random_connected(26, 0.12, 2);
    let reference = graphs::metrics::diameter(&g).unwrap();
    let policy = RecoveryPolicy::new()
        .with_retries(3)
        .with_retransmit(2)
        .with_checkpoint(6);
    let cfg = Config::for_graph(&g)
        .with_faults(FaultPlan::new(40).with_drop(0.003))
        .with_recovery(policy);

    let out = classical::recovery::exact_diameter_recovering(&g, cfg).unwrap();
    assert_eq!(out.outcome.diameter, reference);
    assert_eq!(
        out.recovery.retries, 0,
        "must not re-run the whole pipeline"
    );
    assert_eq!(out.recovery.restarts, 1, "exactly one segment restart");
    assert!(out.recovery.wasted_rounds > 0, "the discarded try costs");

    let labels: Vec<&str> = out.outcome.ledger.phases().map(|(l, _, _)| l).collect();
    // The failing segment's discarded try is ledgered as waste...
    assert!(
        labels.contains(&"eccentricity waves[seg 1] wasted try 0"),
        "missing the wasted span for the restarted segment: {labels:?}"
    );
    // ...while segment 0, already checkpointed, ran exactly once and
    // wasted nothing — the restart did not rewind to round 0.
    assert_eq!(
        labels
            .iter()
            .filter(|l| l.starts_with("eccentricity waves[seg 0]"))
            .count(),
        1,
        "segment 0 was re-executed: {labels:?}"
    );
    // Every committed segment appears exactly once.
    for seg in 0..5 {
        let clean = format!("eccentricity waves[seg {seg}]");
        assert_eq!(
            labels.iter().filter(|l| **l == clean.as_str()).count(),
            1,
            "segment {seg} committed more than once: {labels:?}"
        );
    }
}

/// Regression: a checkpoint-restarted wave segment re-declares a correct
/// quiet phase. `checkpointed_waves` rebases every source's start round
/// against the segment boundary, and `WaveProgram::quiet_until` declares
/// relative to that rebased schedule — so a restart must never leave a
/// stale declaration behind. The run is forced onto `Dense` scheduling
/// because that is where the simulator's quiet cross-check actually
/// executes declared-quiet nodes (active-set parks them instead): any
/// source whose declaration survived the restart un-rebased would send
/// inside its declared phase and surface as a `QuietViolation` fault in
/// the trace.
#[test]
fn restarted_segments_redeclare_rebased_quiet_phases() {
    let g = graphs::generators::random_connected(26, 0.12, 2);
    let policy = RecoveryPolicy::new()
        .with_retries(3)
        .with_retransmit(2)
        .with_checkpoint(6);
    let cfg = Config::for_graph(&g)
        .with_faults(FaultPlan::new(40).with_drop(0.003))
        .with_recovery(policy)
        .with_scheduling(Scheduling::Dense);

    let recorder = trace::Recorder::shared();
    let out = {
        let _guard = trace::install(recorder.clone());
        classical::recovery::exact_diameter_recovering(&g, cfg).unwrap()
    };
    // Same pinned seed as the checkpoint test above; determinism across
    // scheduling modes keeps the restart count stable under Dense.
    assert_eq!(
        out.recovery.restarts, 1,
        "the pinned seed must restart a segment"
    );
    assert_eq!(out.outcome.diameter, graphs::metrics::diameter(&g).unwrap());

    let events = recorder.borrow_mut().take();
    let quiet_faults = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                trace::TraceEvent::Fault {
                    kind: trace::FaultKind::QuietViolation,
                    ..
                }
            )
        })
        .count();
    assert_eq!(
        quiet_faults, 0,
        "a restarted wave segment declared a stale quiet phase"
    );
}

/// Partial-network semantics: whenever crash-stops force a re-root, the
/// answer equals the true diameter of the centrally carved surviving
/// component, and the component bookkeeping is consistent.
#[test]
fn partial_answers_match_the_carved_component_reference() {
    let g = graphs::generators::random_connected(18, 0.15, 3);
    let mut partial = 0u32;
    for fseed in 0..10u64 {
        let plan = FaultPlan::new(fseed).with_crash(fseed as usize % g.len(), fseed % 3);
        let cfg = Config::for_graph(&g)
            .with_faults(plan.clone())
            .with_recovery(RecoveryPolicy::standard());
        let out = match classical::recovery::exact_diameter_recovering(&g, cfg) {
            Ok(out) => out,
            Err(e @ AlgoError::FaultDetected { .. }) => {
                panic!("standard policy failed to heal a lone crash: {e}")
            }
            Err(e) => panic!("untyped failure under a crash plan: {e:?}"),
        };
        let Some(surviving) = out.surviving else {
            // The crash landed after the protocol no longer needed the
            // node; the full-network answer must then be exact.
            assert_eq!(
                out.outcome.diameter,
                graphs::metrics::diameter(&g).unwrap(),
                "seed {fseed}"
            );
            continue;
        };
        partial += 1;
        let carve = classical::recovery::carve_survivors(&g, &plan).unwrap();
        assert_eq!(surviving.nodes, carve.component.nodes, "seed {fseed}");
        assert_eq!(
            surviving.nodes.len() + surviving.excluded,
            g.len(),
            "seed {fseed}: component bookkeeping leaks nodes"
        );
        assert_eq!(
            out.outcome.diameter,
            graphs::metrics::diameter(&carve.graph).unwrap(),
            "seed {fseed}: wrong surviving-component diameter"
        );
        assert!(out.recovery.reroots >= 1, "seed {fseed}");
    }
    assert!(partial > 0, "sweep never exercised partial semantics");
}

/// Classifies one recovering-driver outcome against the
/// correct-or-detected-or-recovered contract. `truth_of(surviving)`
/// supplies the reference answer (full-network or carved-component).
fn classify<T>(
    result: Result<qrecovery::Recovered<T>, QdError>,
    value_of: impl Fn(&T) -> u32,
    truth_full: u32,
    truth_partial: impl Fn(&[NodeId]) -> u32,
    exact: bool,
    context: &str,
) -> &'static str {
    match result {
        Ok(out) => {
            let value = value_of(&out.run);
            let truth = match &out.surviving {
                Some(s) => truth_partial(&s.nodes),
                None => truth_full,
            };
            let in_contract = if exact {
                value == truth
            } else {
                // `D̄ ≤ D ≤ (3/2)·D̄` — the Theorem 4 guarantee.
                value <= truth && 2 * truth <= 3 * value
            };
            if out.recovery.is_clean() {
                assert!(
                    in_contract,
                    "{context}: clean run outside the guarantee: got {value}, truth {truth}"
                );
                "clean"
            } else if in_contract {
                "healed"
            } else {
                // A healed run that passed the driver's checks with a
                // wrong answer: the documented guarantee-class residue
                // (see RECOVERY.md). Never silent — recovery stats say
                // the run was healed.
                "unsound"
            }
        }
        Err(QdError::Classical(AlgoError::FaultDetected { .. })) => "detected",
        Err(QdError::VerificationFailed { .. }) => "detected",
        Err(e) => panic!("{context}: untyped failure under faults: {e:?}"),
    }
}

/// The quantum exact driver (Theorem 1) under drops, crashes, and
/// jitter: every outcome lands in the
/// correct-or-detected-or-recovered contract, the sweep actually heals
/// something, and nothing ever fails untyped.
#[test]
fn quantum_exact_recovering_sweep() {
    let g = graphs::generators::random_connected(20, 0.15, 11);
    let truth = graphs::metrics::diameter(&g).unwrap();
    let mut healed = 0u32;
    let mut unsound = 0u32;
    let mut runs = 0u32;
    for fseed in 0..6u64 {
        let drop = FaultPlan::new(fseed).with_drop(0.004);
        let crash = FaultPlan::new(fseed).with_crash(fseed as usize % g.len(), fseed % 3);
        let jitter = FaultPlan::new(fseed).with_delay(0.004, 3);
        for (kind, plan) in [("drop", drop), ("crash", crash), ("jitter", jitter)] {
            let cfg = Config::for_graph(&g)
                .with_faults(plan.clone())
                .with_recovery(RecoveryPolicy::standard());
            let outcome = classify(
                qrecovery::exact_recovering(&g, ExactParams::new(fseed), cfg),
                |run| run.value,
                truth,
                |_| {
                    let carve = classical::recovery::carve_survivors(&g, &plan).unwrap();
                    graphs::metrics::diameter(&carve.graph).unwrap()
                },
                true,
                &format!("quantum exact, {kind}, seed {fseed}"),
            );
            runs += 1;
            match outcome {
                "healed" => healed += 1,
                "unsound" => unsound += 1,
                _ => {}
            }
        }
    }
    assert!(healed > 0, "sweep never exercised the healing path");
    assert!(
        unsound * 4 <= runs,
        "guarantee-class residue dominates the sweep: {unsound}/{runs}"
    );
}

/// The 3/2-approximation driver (Theorem 4) under the same fault kinds:
/// estimates stay within the approximation guarantee (for the network
/// actually answered for), or the run degrades to typed detection.
#[test]
fn quantum_approx_recovering_sweep() {
    let g = graphs::generators::random_connected(20, 0.18, 5);
    let truth = graphs::metrics::diameter(&g).unwrap();
    let mut healed = 0u32;
    let mut unsound = 0u32;
    let mut runs = 0u32;
    for fseed in 0..6u64 {
        let drop = FaultPlan::new(fseed).with_drop(0.004);
        let crash = FaultPlan::new(fseed).with_crash(fseed as usize % g.len(), fseed % 3);
        let jitter = FaultPlan::new(fseed).with_delay(0.004, 3);
        for (kind, plan) in [("drop", drop), ("crash", crash), ("jitter", jitter)] {
            let cfg = Config::for_graph(&g)
                .with_faults(plan.clone())
                .with_recovery(RecoveryPolicy::standard());
            let outcome = classify(
                qrecovery::approx_recovering(&g, ApproxParams::new(fseed), cfg),
                |run| run.estimate,
                truth,
                |_| {
                    let carve = classical::recovery::carve_survivors(&g, &plan).unwrap();
                    graphs::metrics::diameter(&carve.graph).unwrap()
                },
                false,
                &format!("quantum approx, {kind}, seed {fseed}"),
            );
            runs += 1;
            match outcome {
                "healed" => healed += 1,
                "unsound" => unsound += 1,
                _ => {}
            }
        }
    }
    assert!(healed > 0, "sweep never exercised the healing path");
    assert!(
        unsound * 4 <= runs,
        "guarantee-class residue dominates the sweep: {unsound}/{runs}"
    );
}
