//! Cross-crate integration tests: every algorithm in the workspace run
//! against every other and against centralized ground truth.

use congest_diameter::prelude::*;

use classical::hprw::{self, HprwParams};
use commcc::bit_gadget::BitGadgetReduction;
use commcc::hw::HwReduction;
use commcc::reduction::Reduction;
use commcc::simulation::decide_disj_via_diameter;
use commcc::stretch::StretchedReduction;
use commcc::{bounds, disj};
use quantum_diameter::{approx, evaluation, exact, exact_simple};

fn families() -> Vec<(&'static str, graphs::Graph)> {
    vec![
        ("path", graphs::generators::path(24)),
        ("cycle", graphs::generators::cycle(21)),
        ("star", graphs::generators::star(12)),
        ("grid", graphs::generators::grid(4, 7)),
        ("torus", graphs::generators::torus(4, 5)),
        ("tree", graphs::generators::balanced_tree(2, 4)),
        ("hypercube", graphs::generators::hypercube(4)),
        ("barbell", graphs::generators::barbell(6, 9)),
        ("lollipop", graphs::generators::lollipop(6, 11)),
        ("ring-of-cliques", graphs::generators::ring_of_cliques(5, 4)),
        ("er", graphs::generators::random_connected(36, 0.1, 5)),
        ("sparse", graphs::generators::random_sparse(48, 5.0, 8)),
        ("random-tree", graphs::generators::random_tree(28, 9)),
    ]
}

/// Every diameter algorithm in the workspace agrees with the centralized
/// reference on every family.
#[test]
fn all_exact_algorithms_agree_everywhere() {
    for (name, g) in families() {
        let cfg = Config::for_graph(&g);
        let truth = graphs::metrics::diameter(&g).expect("connected");
        let c = classical::apsp::exact_diameter(&g, cfg).expect("classical");
        assert_eq!(c.diameter, truth, "classical wrong on {name}");
        let q =
            exact::diameter(&g, ExactParams::new(3).with_failure_prob(1e-3), cfg).expect("quantum");
        assert_eq!(q.value, truth, "quantum (Theorem 1) wrong on {name}");
        let qs = exact_simple::diameter(&g, ExactParams::new(3).with_failure_prob(1e-3), cfg)
            .expect("quantum simple");
        assert_eq!(qs.value, truth, "quantum (Section 3.1) wrong on {name}");
    }
}

/// Both 3/2-approximations respect the guarantee on every family.
#[test]
fn approximations_respect_the_guarantee() {
    for (name, g) in families() {
        let n = g.len();
        let cfg = Config::for_graph(&g);
        let truth = graphs::metrics::diameter(&g).expect("connected");
        // The 3/2 guarantee holds w.h.p. over the sampling randomness, so a
        // fixed seed is tied to the RNG stream: this one is known-good for
        // the vendored `rand::rngs::StdRng` (xoshiro256**).
        let c = hprw::approx_diameter(&g, HprwParams::classical(n, 3), cfg)
            .unwrap_or_else(|e| panic!("classical approx failed on {name}: {e}"));
        assert!(
            c.estimate <= truth && c.estimate >= (2 * truth) / 3,
            "classical approx on {name}"
        );
        let q = approx::diameter(&g, ApproxParams::new(3).with_failure_prob(1e-3), cfg)
            .unwrap_or_else(|e| panic!("quantum approx failed on {name}: {e}"));
        assert!(
            q.estimate <= truth && q.estimate >= (2 * truth) / 3,
            "quantum approx on {name}"
        );
    }
}

/// The distributed Figure 2 evaluation agrees with the closed-form window
/// maximum on every family, for several branch inputs.
#[test]
fn figure2_evaluation_is_consistent_across_families() {
    for (name, g) in families() {
        let cfg = Config::for_graph(&g);
        let b = classical::bfs::build(&g, NodeId::new(0), cfg).expect("bfs");
        let tree = classical::TreeView::from(&b);
        let rooted = graphs::tree::RootedTree::from_parents(&b.parents).unwrap();
        let tour = graphs::tree::EulerTour::new(&rooted);
        let windows = quantum_diameter::dfs_window::Windows::new(&tour, 2 * b.depth as usize);
        let eccs = graphs::metrics::eccentricities(&g).unwrap();
        let reference = windows.window_max(&eccs);
        for u0 in [0usize, g.len() / 2, g.len() - 1] {
            let run = evaluation::run_figure2(&g, &tree, b.depth, NodeId::new(u0), cfg)
                .expect("figure 2 run");
            assert_eq!(
                u64::from(run.value),
                u64::from(reference[u0]),
                "figure-2 mismatch on {name} at u0={u0}"
            );
        }
    }
}

/// Quantum rounds scale sublinearly: quadrupling n (at roughly constant D)
/// must grow quantum rounds far less than classical rounds.
#[test]
fn scaling_separation_is_visible() {
    let small = graphs::generators::random_sparse(64, 8.0, 2);
    let big = graphs::generators::random_sparse(256, 8.0, 2);
    let runs = 3;
    let mean_q = |g: &graphs::Graph| -> f64 {
        let cfg = Config::for_graph(g);
        (0..runs)
            .map(|s| {
                exact::diameter(g, ExactParams::new(s), cfg)
                    .unwrap()
                    .rounds()
            })
            .sum::<u64>() as f64
            / runs as f64
    };
    let q_growth = mean_q(&big) / mean_q(&small);
    let c_small = classical::apsp::exact_diameter(&small, Config::for_graph(&small)).unwrap();
    let c_big = classical::apsp::exact_diameter(&big, Config::for_graph(&big)).unwrap();
    let c_growth = c_big.rounds() as f64 / c_small.rounds() as f64;
    assert!(
        q_growth < c_growth,
        "quantum growth {q_growth:.2} should be below classical growth {c_growth:.2}"
    );
}

/// Full lower-bound pipeline: gadgets encode DISJ in the diameter, real
/// distributed runs recover it, and the simulation accounting matches
/// Theorem 11.
#[test]
fn lower_bound_pipeline_end_to_end() {
    // Theorem 8 gadget.
    let hw = HwReduction::new(3);
    for seed in 0..3 {
        for disjoint in [true, false] {
            let (x, y) = disj::random_instance(hw.k(), disjoint, seed);
            let g = hw.build(&x, &y);
            let cfg = Config::for_graph(&g.graph);
            let run = classical::apsp::exact_diameter(&g.graph, cfg).unwrap();
            assert_eq!(run.diameter <= 2, disjoint, "HW gadget seed {seed}");
        }
    }
    // Stretched Theorem 9 gadget through the full two-party pipeline.
    let base = BitGadgetReduction::new(6);
    let red = StretchedReduction::new(base, 4);
    for disjoint in [true, false] {
        let (x, y) = disj::random_instance(6, disjoint, 1);
        let g = red.build(&x, &y);
        let cfg = Config::for_graph(&g.graph);
        let out = decide_disj_via_diameter(&red, &x, &y, 64, cfg).unwrap();
        assert_eq!(out.answer, disjoint);
        // Theorem 11 shape: messages ≈ r/d + 1, qubits = O(r(bw+s)).
        assert_eq!(out.plan.messages(), out.distributed_rounds.div_ceil(4) + 1);
        let qubit_bound = out.distributed_rounds * (cfg.bandwidth_bits() as u64 + 64) + 4 * 100;
        assert!(out.plan.total_qubits() <= qubit_bound + 1);
    }
}

/// The measured quantum upper bound respects the paper's own lower bounds:
/// Ω̃(√n) rounds (Theorem 2) and Ω̃(√(nD)/s) for the actual per-node memory
/// (Theorem 3).
#[test]
fn upper_bounds_respect_lower_bounds() {
    let g = graphs::generators::random_sparse(128, 6.0, 4);
    let cfg = Config::for_graph(&g);
    let q = exact::diameter(&g, ExactParams::new(1), cfg).unwrap();
    let n = g.len() as u64;
    let d = graphs::metrics::diameter(&g).unwrap() as u64;
    assert!(q.rounds() as f64 >= bounds::theorem2_rounds_lower_bound(n));
    let t3 = bounds::theorem3_rounds_lower_bound(n, d, q.memory.per_node_qubits as u64);
    assert!(
        q.rounds() as f64 >= t3,
        "rounds {} below Theorem 3 bound {t3}",
        q.rounds()
    );
}

/// Quantum memory stays polylogarithmic while the domain grows.
#[test]
fn memory_scaling_is_polylog() {
    let mut last = 0usize;
    for &n in &[64usize, 256, 1024] {
        let g = graphs::generators::random_sparse(n, 6.0, 3);
        let cfg = Config::for_graph(&g);
        let q = exact::diameter(&g, ExactParams::new(0), cfg).unwrap();
        assert!(
            q.memory.leader_qubits < 40 * (n.ilog2() as usize).pow(2),
            "leader memory not O(log² n) at n={n}"
        );
        assert!(q.memory.leader_qubits >= last, "memory should grow gently");
        last = q.memory.per_node_qubits;
    }
}
