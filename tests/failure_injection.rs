//! Failure-injection and edge-case tests: every driver must fail *loudly
//! and typed* on broken inputs, never return garbage.

use congest_diameter::prelude::*;

use classical::hprw::{self, HprwParams};
use congest::{BandwidthPolicy, CongestError};
use quantum_diameter::{approx, exact};

/// With a bandwidth budget far below O(log n), every algorithm must abort
/// with a bandwidth error instead of silently widening its messages.
#[test]
fn starved_bandwidth_is_detected() {
    let g = graphs::generators::random_connected(24, 0.15, 1);
    let tight = Config::new(2); // 2 bits per edge per round: hopeless
    let err = classical::apsp::exact_diameter(&g, tight).unwrap_err();
    assert!(
        matches!(
            err,
            AlgoError::Congest(CongestError::BandwidthExceeded { .. })
        ),
        "expected bandwidth error, got {err:?}"
    );
    let err = exact::diameter(&g, ExactParams::new(0), tight).unwrap_err();
    assert!(matches!(
        err,
        QdError::Classical(AlgoError::Congest(CongestError::BandwidthExceeded { .. }))
    ));
}

/// Under the Track policy the same runs complete and report violations.
#[test]
fn tracked_bandwidth_reports_violations() {
    let g = graphs::generators::cycle(12);
    let tight = Config::new(2).with_policy(BandwidthPolicy::Track);
    let out = classical::apsp::exact_diameter(&g, tight).unwrap();
    assert_eq!(out.diameter, 6);
    let violations: u64 = out
        .ledger
        .phases()
        .map(|(_, s, reps)| s.bandwidth_violations * reps)
        .sum();
    assert!(violations > 0, "starved run must report violations");
}

/// The algorithms actually fit the canonical O(log n) budget: the largest
/// message ever sent stays within Config::for_graph.
#[test]
fn algorithms_fit_the_congest_budget() {
    let g = graphs::generators::random_connected(40, 0.1, 3);
    let cfg = Config::for_graph(&g);
    // Enforce policy: completing at all proves the fit; also check headroom.
    let out = classical::apsp::exact_diameter(&g, cfg).unwrap();
    let max_bits = out.ledger.max_message_bits();
    assert!(max_bits <= cfg.bandwidth_bits());
    assert!(max_bits >= 2, "stats should have recorded messages");
    let girth = classical::girth::compute(&g, cfg).unwrap();
    assert!(girth.ledger.max_message_bits() <= cfg.bandwidth_bits());
}

/// Disconnected networks: every driver returns the typed error.
#[test]
fn disconnection_is_typed_everywhere() {
    let g = graphs::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
    let cfg = Config::for_graph(&g);
    assert!(matches!(
        classical::apsp::exact_diameter(&g, cfg),
        Err(AlgoError::Disconnected)
    ));
    assert!(matches!(
        classical::girth::compute(&g, cfg),
        Err(AlgoError::Disconnected)
    ));
    assert!(matches!(
        classical::ecc::two_approx(&g, cfg),
        Err(AlgoError::Disconnected)
    ));
    assert!(matches!(
        hprw::approx_diameter(&g, HprwParams::classical(6, 0), cfg),
        Err(AlgoError::Disconnected)
    ));
    assert!(matches!(
        exact::diameter(&g, ExactParams::new(0), cfg),
        Err(QdError::Classical(AlgoError::Disconnected))
    ));
    assert!(matches!(
        approx::diameter(&g, ApproxParams::new(0), cfg),
        Err(QdError::Classical(AlgoError::Disconnected))
    ));
}

/// Degenerate parameters are rejected, not mangled.
#[test]
fn degenerate_parameters_are_rejected() {
    let g = graphs::generators::cycle(8);
    let cfg = Config::for_graph(&g);
    // δ outside (0, 1).
    assert!(exact::diameter(&g, ExactParams::new(0).with_failure_prob(0.0), cfg).is_err());
    assert!(exact::diameter(&g, ExactParams::new(0).with_failure_prob(1.5), cfg).is_err());
    // Empty graph.
    let empty = graphs::Graph::from_edges(0, []).unwrap();
    assert!(exact::diameter(&empty, ExactParams::new(0), Config::new(8)).is_err());
    assert!(classical::apsp::exact_diameter(&empty, Config::new(8)).is_err());
}

/// Tiny networks (n = 1, 2) are exact and never panic across all drivers.
#[test]
fn tiny_networks_everywhere() {
    for n in [1usize, 2] {
        let g = if n == 1 {
            graphs::Graph::from_edges(1, []).unwrap()
        } else {
            graphs::Graph::from_edges(2, [(0, 1)]).unwrap()
        };
        let cfg = Config::for_graph(&g);
        let expect = (n - 1) as graphs::Dist;
        assert_eq!(
            classical::apsp::exact_diameter(&g, cfg).unwrap().diameter,
            expect
        );
        assert_eq!(
            exact::diameter(&g, ExactParams::new(0), cfg).unwrap().value,
            expect
        );
        assert_eq!(
            quantum_diameter::exact_simple::diameter(&g, ExactParams::new(0), cfg)
                .unwrap()
                .value,
            expect
        );
        assert_eq!(
            approx::diameter(&g, ApproxParams::new(0), cfg)
                .unwrap()
                .estimate,
            expect
        );
        assert_eq!(classical::girth::compute(&g, cfg).unwrap().girth, None);
    }
}

/// The quantum maximize resource cap aborts gracefully: the run completes,
/// flags `aborted`, and still returns a valid (if possibly suboptimal)
/// eccentricity window value.
#[test]
fn quantum_abort_is_graceful() {
    use quantum::{maximize, MaximizeParams, SearchState};
    use rand::{rngs::StdRng, SeedableRng};
    let n = 4096;
    let state = SearchState::uniform(n);
    let params = MaximizeParams::with_min_mass(1.0 / n as f64).with_cap_factor(1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let out = maximize(&state, |x| x, params, &mut rng).unwrap();
    assert!(out.aborted);
    assert!(out.argmax < n);
}
