//! Failure-injection and edge-case tests: every driver must fail *loudly
//! and typed* on broken inputs, never return garbage — including under the
//! seeded fault plans of `congest::faults`, where the contract is "correct
//! answer or a `FaultDetected` error naming the round", never a silently
//! wrong diameter.

use congest_diameter::prelude::*;
use proptest::prelude::*;

use classical::hprw::{self, HprwParams};
use congest::{BandwidthPolicy, CongestError, FaultPlan, FaultStats};
use quantum_diameter::{approx, exact};

/// With a bandwidth budget far below O(log n), every algorithm must abort
/// with a bandwidth error instead of silently widening its messages.
#[test]
fn starved_bandwidth_is_detected() {
    let g = graphs::generators::random_connected(24, 0.15, 1);
    let tight = Config::new(2); // 2 bits per edge per round: hopeless
    let err = classical::apsp::exact_diameter(&g, tight).unwrap_err();
    assert!(
        matches!(
            err,
            AlgoError::Congest(CongestError::BandwidthExceeded { .. })
        ),
        "expected bandwidth error, got {err:?}"
    );
    let err = exact::diameter(&g, ExactParams::new(0), tight).unwrap_err();
    assert!(matches!(
        err,
        QdError::Classical(AlgoError::Congest(CongestError::BandwidthExceeded { .. }))
    ));
}

/// Under the Track policy the same runs complete and report violations.
#[test]
fn tracked_bandwidth_reports_violations() {
    let g = graphs::generators::cycle(12);
    let tight = Config::new(2).with_policy(BandwidthPolicy::Track);
    let out = classical::apsp::exact_diameter(&g, tight).unwrap();
    assert_eq!(out.diameter, 6);
    let violations: u64 = out
        .ledger
        .phases()
        .map(|(_, s, reps)| s.bandwidth_violations * reps)
        .sum();
    assert!(violations > 0, "starved run must report violations");
}

/// The algorithms actually fit the canonical O(log n) budget: the largest
/// message ever sent stays within Config::for_graph.
#[test]
fn algorithms_fit_the_congest_budget() {
    let g = graphs::generators::random_connected(40, 0.1, 3);
    let cfg = Config::for_graph(&g);
    // Enforce policy: completing at all proves the fit; also check headroom.
    let out = classical::apsp::exact_diameter(&g, cfg).unwrap();
    let max_bits = out.ledger.max_message_bits();
    assert!(max_bits <= cfg.bandwidth_bits());
    assert!(max_bits >= 2, "stats should have recorded messages");
    let girth = classical::girth::compute(&g, cfg).unwrap();
    assert!(girth.ledger.max_message_bits() <= cfg.bandwidth_bits());
}

/// Disconnected networks: every driver returns the typed error.
#[test]
fn disconnection_is_typed_everywhere() {
    let g = graphs::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
    let cfg = Config::for_graph(&g);
    assert!(matches!(
        classical::apsp::exact_diameter(&g, cfg),
        Err(AlgoError::Disconnected)
    ));
    assert!(matches!(
        classical::girth::compute(&g, cfg),
        Err(AlgoError::Disconnected)
    ));
    assert!(matches!(
        classical::ecc::two_approx(&g, cfg),
        Err(AlgoError::Disconnected)
    ));
    assert!(matches!(
        hprw::approx_diameter(&g, HprwParams::classical(6, 0), cfg),
        Err(AlgoError::Disconnected)
    ));
    assert!(matches!(
        exact::diameter(&g, ExactParams::new(0), cfg),
        Err(QdError::Classical(AlgoError::Disconnected))
    ));
    assert!(matches!(
        approx::diameter(&g, ApproxParams::new(0), cfg),
        Err(QdError::Classical(AlgoError::Disconnected))
    ));
}

/// Degenerate parameters are rejected, not mangled.
#[test]
fn degenerate_parameters_are_rejected() {
    let g = graphs::generators::cycle(8);
    let cfg = Config::for_graph(&g);
    // δ outside (0, 1).
    assert!(exact::diameter(&g, ExactParams::new(0).with_failure_prob(0.0), cfg).is_err());
    assert!(exact::diameter(&g, ExactParams::new(0).with_failure_prob(1.5), cfg).is_err());
    // Empty graph.
    let empty = graphs::Graph::from_edges(0, []).unwrap();
    assert!(exact::diameter(&empty, ExactParams::new(0), Config::new(8)).is_err());
    assert!(classical::apsp::exact_diameter(&empty, Config::new(8)).is_err());
}

/// Tiny networks (n = 1, 2) are exact and never panic across all drivers.
#[test]
fn tiny_networks_everywhere() {
    for n in [1usize, 2] {
        let g = if n == 1 {
            graphs::Graph::from_edges(1, []).unwrap()
        } else {
            graphs::Graph::from_edges(2, [(0, 1)]).unwrap()
        };
        let cfg = Config::for_graph(&g);
        let expect = (n - 1) as graphs::Dist;
        assert_eq!(
            classical::apsp::exact_diameter(&g, cfg).unwrap().diameter,
            expect
        );
        assert_eq!(
            exact::diameter(&g, ExactParams::new(0), cfg).unwrap().value,
            expect
        );
        assert_eq!(
            quantum_diameter::exact_simple::diameter(&g, ExactParams::new(0), cfg)
                .unwrap()
                .value,
            expect
        );
        assert_eq!(
            approx::diameter(&g, ApproxParams::new(0), cfg)
                .unwrap()
                .estimate,
            expect
        );
        assert_eq!(classical::girth::compute(&g, cfg).unwrap().girth, None);
    }
}

// ---------------------------------------------------------------------------
// Fault injection: determinism and graceful degradation.
// ---------------------------------------------------------------------------

/// Min-id flood used as the fault-determinism workload (mirrors the
/// scheduler-equivalence workload in `tests/property.rs`).
#[derive(Clone, Debug)]
struct IdMsg(u32, usize);
impl congest::Payload for IdMsg {
    fn size_bits(&self) -> usize {
        congest::bits::for_node(self.1)
    }
}
struct MinIdFlood {
    best: u32,
}
impl congest::NodeProgram for MinIdFlood {
    type Msg = IdMsg;
    type Output = u32;
    fn on_round(&mut self, ctx: &mut congest::RoundCtx<'_, IdMsg>) -> congest::Status {
        let mut improved = ctx.round() == 0;
        for &(_, IdMsg(v, _)) in ctx.inbox() {
            if v < self.best {
                self.best = v;
                improved = true;
            }
        }
        if improved {
            ctx.broadcast(IdMsg(self.best, ctx.num_nodes()));
        }
        congest::Status::Halted
    }
    fn finish(self, _node: NodeId) -> u32 {
        self.best
    }
}

/// Runs the flood under `cfg` with a trace recorder installed, returning
/// everything the fault-replay contract covers: outputs, run stats, fault
/// stats, and the full trace event stream (including `Fault` events).
fn faulty_flood_run(
    g: &Graph,
    cfg: Config,
) -> (RunStats, FaultStats, Vec<u32>, Vec<trace::TraceEvent>) {
    let recorder = trace::Recorder::shared();
    let (stats, faults, outputs) = {
        let _guard = trace::install(recorder.clone());
        let mut net = congest::Network::new(g, cfg, |v| MinIdFlood { best: u32::from(v) });
        let stats = net.run_until_quiescent(100_000).unwrap();
        let faults = net.fault_stats();
        (stats, faults, net.into_outputs())
    };
    let events = recorder.borrow_mut().take();
    (stats, faults, outputs, events)
}

/// Min-id flood whose nodes each sleep until a staggered wake round
/// before joining: the fault layer (drops, jitter, crashes) interacting
/// with `Status::Sleep` and fast-forward is exactly the replay surface
/// the active-set scheduler must keep byte-identical.
struct SleepyFlood {
    wake: u64,
    best: u32,
}
impl congest::NodeProgram for SleepyFlood {
    type Msg = IdMsg;
    type Output = u32;
    fn on_round(&mut self, ctx: &mut congest::RoundCtx<'_, IdMsg>) -> congest::Status {
        let mut improved = ctx.round() == self.wake;
        for &(_, IdMsg(v, _)) in ctx.inbox() {
            if v < self.best {
                self.best = v;
                improved = true;
            }
        }
        if improved {
            ctx.broadcast(IdMsg(self.best, ctx.num_nodes()));
        }
        if ctx.round() < self.wake {
            congest::Status::Sleep(self.wake)
        } else {
            congest::Status::Halted
        }
    }
    fn finish(self, _node: NodeId) -> u32 {
        self.best
    }
}

/// Like [`faulty_flood_run`], but over the staggered-wake flood.
fn faulty_sleepy_run(
    g: &Graph,
    cfg: Config,
) -> (RunStats, FaultStats, Vec<u32>, Vec<trace::TraceEvent>) {
    let recorder = trace::Recorder::shared();
    let (stats, faults, outputs) = {
        let _guard = trace::install(recorder.clone());
        let mut net = congest::Network::new(g, cfg, |v| SleepyFlood {
            wake: (v.index() as u64 * 5) % 17,
            best: u32::from(v),
        });
        let stats = net.run_until_quiescent(100_000).unwrap();
        let faults = net.fault_stats();
        (stats, faults, net.into_outputs())
    };
    let events = recorder.borrow_mut().take();
    (stats, faults, outputs, events)
}

/// A connected random graph for the fault-replay properties.
fn arb_graph() -> impl Strategy<Value = graphs::Graph> {
    (4usize..24, 0u64..1_000_000)
        .prop_map(|(n, seed)| graphs::generators::random_connected(n, 0.15, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole's replay contract: a faulty run is byte-identical —
    /// same RunStats, same FaultStats, same outputs, same trace event
    /// stream — across shard counts {1, 2, 4}, because fault fates are a
    /// pure function of (plan seed, round, edge), decided in the
    /// sequential commit phase.
    #[test]
    fn faulty_runs_replay_across_shard_counts(g in arb_graph(), fseed in 0u64..1_000) {
        let plan = FaultPlan::new(fseed)
            .with_drop(0.08)
            .with_corrupt(0.04)
            .with_delay(0.15, 3)
            .with_link_failure(0, 1, 1..5)
            .with_crash(g.len() - 1, 3);
        let cfg = Config::for_graph(&g).with_faults(plan);
        let (stats, faults, outputs, events) = faulty_flood_run(&g, cfg);
        for shards in [2usize, 4] {
            let (stats_k, faults_k, outputs_k, events_k) =
                faulty_flood_run(&g, cfg.with_shards(shards));
            prop_assert_eq!(stats_k, stats, "run stats diverged at {} shards", shards);
            prop_assert_eq!(faults_k, faults, "fault stats diverged at {} shards", shards);
            prop_assert_eq!(&outputs_k, &outputs, "outputs diverged at {} shards", shards);
            prop_assert_eq!(&events_k, &events, "trace diverged at {} shards", shards);
        }
    }

    /// Active-set scheduling replays fault plans byte-identically to the
    /// dense reference: same RunStats, FaultStats, outputs, and trace
    /// stream under drops, corruption, delay jitter, link failures, and a
    /// crash-stop — across shard counts and with fast-forward on or off.
    /// The staggered-wake flood additionally crosses the fault layer with
    /// `Status::Sleep` wakeups and fast-forwardable quiescent stretches
    /// (a delayed message must still land, and wake its receiver, at the
    /// exact round the dense scheduler would deliver it).
    #[test]
    fn faulty_runs_match_dense_scheduling(g in arb_graph(), fseed in 0u64..1_000) {
        let plan = FaultPlan::new(fseed)
            .with_drop(0.08)
            .with_corrupt(0.04)
            .with_delay(0.15, 3)
            .with_link_failure(0, 1, 1..5)
            .with_crash(g.len() - 1, 3);
        let base = Config::for_graph(&g).with_faults(plan);
        for (name, run) in [
            ("flood", faulty_flood_run as fn(&Graph, Config) -> _),
            ("sleepy", faulty_sleepy_run as fn(&Graph, Config) -> _),
        ] {
            let (stats, faults, outputs, events) =
                run(&g, base.with_scheduling(Scheduling::Dense));
            // Traces compare through `expand_round_skips`: fast-forwarded
            // stretches arrive as compact `RoundSkip` events in the sparse
            // runs, defined as equivalent to the dense zero-delivery ticks.
            let events = trace::expand_round_skips(events);
            for shards in [1usize, 4] {
                for fast_forward in [true, false] {
                    let cfg = base
                        .with_shards(shards)
                        .with_scheduling(Scheduling::ActiveSet)
                        .with_fast_forward(fast_forward);
                    let (stats_k, faults_k, outputs_k, events_k) = run(&g, cfg);
                    let events_k = trace::expand_round_skips(events_k);
                    let ctx = format!(
                        "{name}: {shards} shards, fast_forward={fast_forward}"
                    );
                    prop_assert_eq!(stats_k, stats, "run stats diverged ({})", &ctx);
                    prop_assert_eq!(faults_k, faults, "fault stats diverged ({})", &ctx);
                    prop_assert_eq!(&outputs_k, &outputs, "outputs diverged ({})", &ctx);
                    prop_assert_eq!(&events_k, &events, "trace diverged ({})", &ctx);
                }
            }
        }
    }

    /// A passive plan (seed only, nothing enabled) is a strict identity:
    /// stats, outputs, and traces match a config with no plan at all, and
    /// the configs compare equal.
    #[test]
    fn passive_fault_plan_is_identity(g in arb_graph(), fseed in 0u64..1_000) {
        let base = Config::for_graph(&g);
        let passive = base.with_faults(FaultPlan::new(fseed));
        prop_assert_eq!(passive, base);
        let (stats, faults, outputs, events) = faulty_flood_run(&g, base);
        prop_assert_eq!(faults, FaultStats::default());
        let (stats_p, faults_p, outputs_p, events_p) = faulty_flood_run(&g, passive);
        prop_assert_eq!(stats_p, stats);
        prop_assert_eq!(faults_p, FaultStats::default());
        prop_assert_eq!(&outputs_p, &outputs);
        prop_assert_eq!(&events_p, &events);
    }
}

/// Asserts the fault contract for one driver result: either the right
/// answer, or a `FaultDetected` error whose rendering names the round.
/// Returns whether degradation was detected.
fn correct_or_detected(
    result: Result<graphs::Dist, AlgoError>,
    truth: graphs::Dist,
    context: &str,
) -> bool {
    match result {
        Ok(d) => {
            assert_eq!(d, truth, "{context}: silently wrong diameter");
            false
        }
        Err(e @ AlgoError::FaultDetected { .. }) => {
            assert!(
                e.to_string().contains("fault detected at round"),
                "{context}: error does not name a round: {e}"
            );
            true
        }
        Err(e) => panic!("{context}: untyped failure under faults: {e:?}"),
    }
}

/// Message drops: across a sweep of fault seeds, the classical exact
/// driver and the quantum exact driver (Theorem 1) always either answer
/// correctly or fail with `FaultDetected` — and the sweep actually
/// exercises both outcomes.
#[test]
fn exact_drivers_degrade_gracefully_under_drops() {
    let g = graphs::generators::random_connected(22, 0.15, 11);
    let truth = graphs::metrics::diameter(&g).unwrap();
    let mut detected = 0u32;
    let mut correct = 0u32;
    for fseed in 0..12u64 {
        // Alternate heavy and feather-light loss so the sweep exercises
        // both contract arms: detection (2% over thousands of messages is
        // near-certain to hit a protocol edge) and unharmed completion.
        let p = if fseed % 2 == 0 { 0.02 } else { 2e-5 };
        let plan = FaultPlan::new(fseed).with_drop(p);
        let cfg = Config::for_graph(&g).with_faults(plan);
        let classical_result = classical::apsp::exact_diameter(&g, cfg).map(|out| out.diameter);
        if correct_or_detected(classical_result, truth, "classical apsp") {
            detected += 1;
        } else {
            correct += 1;
        }
        let quantum_result = match exact::diameter(&g, ExactParams::new(fseed), cfg) {
            Ok(run) => Ok(run.value),
            Err(QdError::Classical(e)) => Err(e),
            Err(e) => panic!("quantum exact: untyped failure under faults: {e:?}"),
        };
        correct_or_detected(quantum_result, truth, "quantum exact");
    }
    assert!(detected > 0, "sweep never tripped fault detection");
    assert!(correct > 0, "sweep never completed a faulty run correctly");
}

/// The 3/2-approximation drivers under drops: correct-to-guarantee or
/// typed detection, never a silently out-of-range estimate.
#[test]
fn approx_drivers_degrade_gracefully_under_drops() {
    let g = graphs::generators::random_connected(20, 0.18, 5);
    let truth = graphs::metrics::diameter(&g).unwrap();
    for fseed in 0..8u64 {
        let plan = FaultPlan::new(fseed).with_drop(0.02);
        let cfg = Config::for_graph(&g).with_faults(plan);
        match hprw::approx_diameter(&g, HprwParams::classical(g.len(), fseed), cfg) {
            Ok(run) => assert!(
                run.estimate <= truth && run.estimate >= (2 * truth) / 3,
                "hprw estimate {} out of range for D={truth}",
                run.estimate
            ),
            Err(AlgoError::FaultDetected { .. }) => {}
            Err(e) => panic!("hprw: untyped failure under faults: {e:?}"),
        }
        match approx::diameter(&g, ApproxParams::new(fseed), cfg) {
            Ok(run) => assert!(
                run.estimate <= truth && run.estimate >= (2 * truth) / 3,
                "quantum approx estimate {} out of range for D={truth}",
                run.estimate
            ),
            Err(QdError::Classical(AlgoError::FaultDetected { .. })) => {}
            Err(e) => panic!("quantum approx: untyped failure under faults: {e:?}"),
        }
    }
}

/// Crash-stopping a node mid-protocol is always detected: the diameter of
/// the surviving network is not the diameter that was asked for.
#[test]
fn crash_stops_are_always_detected() {
    let g = graphs::generators::random_connected(18, 0.2, 3);
    for crashed in [0usize, 7, 17] {
        let plan = FaultPlan::new(1).with_crash(crashed, 2);
        let cfg = Config::for_graph(&g).with_faults(plan);
        let err = classical::apsp::exact_diameter(&g, cfg).unwrap_err();
        assert!(
            matches!(err, AlgoError::FaultDetected { .. }),
            "crash of {crashed} gave {err:?}"
        );
    }
}

/// Pure delivery jitter loses nothing, but it breaks the paper's timing
/// lemmas (a wave arriving late violates Lemma 3's arrival equation), so
/// runs either absorb it or report it — and heavy jitter is reported.
#[test]
fn jitter_is_detected_when_it_breaks_the_schedule() {
    let g = graphs::generators::random_connected(16, 0.2, 9);
    let truth = graphs::metrics::diameter(&g).unwrap();
    let mut detected = 0u32;
    for fseed in 0..6u64 {
        let plan = FaultPlan::new(fseed).with_delay(0.9, 3);
        let cfg = Config::for_graph(&g).with_faults(plan);
        if correct_or_detected(
            classical::apsp::exact_diameter(&g, cfg).map(|out| out.diameter),
            truth,
            "classical apsp under jitter",
        ) {
            detected += 1;
        }
    }
    assert!(detected > 0, "heavy jitter was never detected");
}

/// The quantum maximize resource cap aborts gracefully: the run completes,
/// flags `aborted`, and still returns a valid (if possibly suboptimal)
/// eccentricity window value.
#[test]
fn quantum_abort_is_graceful() {
    use quantum::{maximize, MaximizeParams, SearchState};
    use rand::{rngs::StdRng, SeedableRng};
    let n = 4096;
    let state = SearchState::uniform(n);
    let params = MaximizeParams::with_min_mass(1.0 / n as f64).with_cap_factor(1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let out = maximize(&state, |x| x, params, &mut rng).unwrap();
    assert!(out.aborted);
    assert!(out.argmax < n);
}
