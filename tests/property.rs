//! Property-based tests (proptest) over randomized graph and input spaces:
//! the paper's lemmas and guarantees as machine-checked invariants.

use congest_diameter::prelude::*;
use proptest::prelude::*;

use commcc::bit_gadget::BitGadgetReduction;
use commcc::hw::HwReduction;
use commcc::reduction::{check_instance, Reduction};
use commcc::stretch::StretchedReduction;
use graphs::tree::{EulerTour, RootedTree};
use quantum_diameter::dfs_window::{min_coverage, Windows};

/// A connected random graph described by (n, density, seed).
fn arb_graph() -> impl Strategy<Value = graphs::Graph> {
    (3usize..28, 0usize..3, 0u64..1_000_000).prop_map(|(n, density, seed)| {
        let p = [0.08, 0.15, 0.3][density];
        graphs::generators::random_connected(n, p, seed)
    })
}

/// A random connected tree.
fn arb_tree() -> impl Strategy<Value = graphs::Graph> {
    (2usize..30, 0u64..1_000_000).prop_map(|(n, seed)| graphs::generators::random_tree(n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed BFS (Figure 1) matches the centralized reference on
    /// arbitrary connected graphs and roots.
    #[test]
    fn distributed_bfs_matches_reference(g in arb_graph(), root_sel in 0usize..1000) {
        let root = NodeId::new(root_sel % g.len());
        let cfg = Config::for_graph(&g);
        let out = classical::bfs::build(&g, root, cfg).unwrap();
        let reference = graphs::traversal::Bfs::run(&g, root);
        for v in g.nodes() {
            prop_assert_eq!(Some(out.dists[v.index()]), reference.dist(v));
        }
        prop_assert_eq!(u64::from(out.depth) + 2, out.stats.rounds);
    }

    /// Lemma 1: with window width 2d over the Euler tour of a depth-d BFS
    /// tree, every node is covered by at least a d/2n fraction of windows.
    #[test]
    fn lemma1_coverage(g in arb_graph()) {
        let bfs = graphs::traversal::Bfs::run(&g, NodeId::new(0));
        let d = bfs.eccentricity().unwrap();
        prop_assume!(d >= 1);
        let tree = RootedTree::from_bfs(&bfs).unwrap();
        let tour = EulerTour::new(&tree);
        let windows = Windows::new(&tour, 2 * d as usize);
        let bound = f64::from(d) / (2.0 * g.len() as f64);
        prop_assert!(min_coverage(&windows) >= bound - 1e-12);
    }

    /// Maximizing the window function always yields the diameter
    /// (Equation 2's key property).
    #[test]
    fn window_max_peaks_at_diameter(g in arb_graph()) {
        let bfs = graphs::traversal::Bfs::run(&g, NodeId::new(0));
        let d = bfs.eccentricity().unwrap();
        let tree = RootedTree::from_bfs(&bfs).unwrap();
        let tour = EulerTour::new(&tree);
        let windows = Windows::new(&tour, 2 * d as usize);
        let eccs = graphs::metrics::eccentricities(&g).unwrap();
        let f = windows.window_max(&eccs);
        prop_assert_eq!(
            f.into_iter().max().unwrap(),
            graphs::metrics::diameter(&g).unwrap()
        );
    }

    /// The classical exact-diameter pipeline is correct on arbitrary
    /// connected graphs.
    #[test]
    fn classical_exact_diameter_correct(g in arb_graph()) {
        let cfg = Config::for_graph(&g);
        let out = classical::apsp::exact_diameter(&g, cfg).unwrap();
        prop_assert_eq!(Some(out.diameter), graphs::metrics::diameter(&g));
    }

    /// The quantum exact algorithm (Theorem 1) is correct on arbitrary
    /// connected graphs (δ = 10⁻³; a proptest run has ~24 cases so the
    /// expected number of quantum failures is ≪ 1).
    #[test]
    fn quantum_exact_diameter_correct(g in arb_graph(), seed in 0u64..1000) {
        let cfg = Config::for_graph(&g);
        let out = quantum_diameter::exact::diameter(
            &g,
            ExactParams::new(seed).with_failure_prob(1e-3),
            cfg,
        ).unwrap();
        prop_assert_eq!(Some(out.value), graphs::metrics::diameter(&g));
    }

    /// Trees: the DFS tour is an Euler tour (every edge visited exactly
    /// twice) and the distributed walk reproduces it from any start.
    #[test]
    fn dfs_walk_reproduces_tour_on_trees(g in arb_tree(), start_sel in 0usize..1000) {
        let cfg = Config::for_graph(&g);
        let b = classical::bfs::build(&g, NodeId::new(0), cfg).unwrap();
        let view = classical::TreeView::from(&b);
        let rooted = RootedTree::from_parents(&b.parents).unwrap();
        let tour = EulerTour::new(&rooted);
        let start = NodeId::new(start_sel % g.len());
        let steps = (tour.len() as u64).min(2 * u64::from(b.depth)).max(1);
        let walk = classical::dfs_walk::walk(&g, &view, start, steps, cfg).unwrap();
        let expected = tour.segment_first_visits(tour.tau(start), steps as usize);
        for (v, offset) in expected {
            prop_assert_eq!(walk.tau[v.index()], Some(offset as u64));
        }
    }

    /// The HW reduction (Theorem 8) satisfies Definition 3 on arbitrary
    /// inputs.
    #[test]
    fn hw_reduction_contract(s in 1usize..5, xm in any::<u64>(), ym in any::<u64>()) {
        let red = HwReduction::new(s);
        let k = red.k();
        let x: Vec<bool> = (0..k).map(|i| xm >> (i % 64) & 1 == 1).collect();
        let y: Vec<bool> = (0..k).map(|i| ym >> (i % 64) & 1 == 1).collect();
        prop_assert!(check_instance(&red, &x, &y).is_ok());
    }

    /// The bit-gadget reduction (Theorem 9 class) satisfies Definition 3 on
    /// arbitrary inputs, including non-power-of-two k.
    #[test]
    fn bit_gadget_contract(k in 2usize..24, xm in any::<u64>(), ym in any::<u64>()) {
        let red = BitGadgetReduction::new(k);
        let x: Vec<bool> = (0..k).map(|i| xm >> i & 1 == 1).collect();
        let y: Vec<bool> = (0..k).map(|i| ym >> i & 1 == 1).collect();
        prop_assert!(check_instance(&red, &x, &y).is_ok());
    }

    /// Figure 8: stretching preserves the reduction contract with the gap
    /// shifted by d.
    #[test]
    fn stretched_reduction_contract(
        k in 2usize..10,
        d in 1usize..7,
        xm in any::<u32>(),
        ym in any::<u32>(),
    ) {
        let red = StretchedReduction::new(BitGadgetReduction::new(k), d);
        let x: Vec<bool> = (0..k).map(|i| xm >> i & 1 == 1).collect();
        let y: Vec<bool> = (0..k).map(|i| ym >> i & 1 == 1).collect();
        prop_assert!(check_instance(&red, &x, &y).is_ok());
        prop_assert_eq!(red.num_nodes(), red.base().num_nodes() + red.b() * d);
    }

    /// Amplitude amplification finds a planted element whenever one exists
    /// (δ = 10⁻³ per call).
    #[test]
    fn amplify_finds_planted_elements(n in 8usize..256, target_sel in 0usize..1000, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let target = target_sel % n;
        let init = SearchState::uniform(n);
        let params = quantum::AmplifyParams::with_min_mass(1.0 / n as f64)
            .with_failure_prob(1e-3);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = quantum::amplify(&init, |x| x == target, params, &mut rng).unwrap();
        prop_assert_eq!(out.found, Some(target));
    }

    /// Grover evolution preserves the norm and matches the closed form for
    /// arbitrary marked fractions.
    #[test]
    fn grover_closed_form(n in 4usize..128, marked_count in 1usize..4, k in 0u64..12) {
        let init = SearchState::uniform(n);
        let mut s = init.clone();
        let m = marked_count.min(n);
        let marked = |x: usize| x < m;
        s.grover_iterations(&init, marked, k);
        let expect = SearchState::grover_success_probability(m as f64 / n as f64, k);
        prop_assert!((s.probability_of(marked) - expect).abs() < 1e-9);
        prop_assert!((s.norm_squared() - 1.0).abs() < 1e-9);
    }

    /// LP13 source detection matches the centralized reference for
    /// arbitrary source sets and parameters.
    #[test]
    fn source_detection_matches_reference(
        g in arb_graph(),
        src_mask in any::<u32>(),
        gamma in 1usize..5,
        sigma in 1u32..12,
    ) {
        let sources: Vec<NodeId> = (0..g.len())
            .filter(|&i| src_mask >> (i % 32) & 1 == 1)
            .map(NodeId::new)
            .collect();
        let cfg = Config::for_graph(&g);
        let out = classical::source_detection::detect(&g, &sources, gamma, sigma, cfg).unwrap();
        let expect = classical::source_detection::reference(&g, &sources, gamma, sigma);
        prop_assert_eq!(out.lists, expect);
    }

    /// The distributed girth computation (PRT12) matches the centralized
    /// edge-removal reference on arbitrary connected graphs.
    #[test]
    fn distributed_girth_matches_reference(g in arb_graph()) {
        let cfg = Config::for_graph(&g);
        let out = classical::girth::compute(&g, cfg).unwrap();
        prop_assert_eq!(out.girth, graphs::metrics::girth(&g));
    }

    /// The BCW98 quantum disjointness protocol is correct and its
    /// transcript respects the BGK lower bound on arbitrary inputs.
    #[test]
    fn qdisj_protocol_correct(k in 4usize..128, xm in any::<u128>(), ym in any::<u128>(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let x: Vec<bool> = (0..k).map(|i| xm >> (i % 128) & 1 == 1).collect();
        let y: Vec<bool> = (0..k).map(|i| ym >> (i % 128) & 1 == 1).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = commcc::qdisj::run(&x, &y, 1e-3, &mut rng).unwrap();
        prop_assert_eq!(out.disjoint, commcc::disj::eval(&x, &y));
        if let Some(w) = out.witness {
            prop_assert!(x[w] && y[w]);
        }
        // The BGK bound constrains worst-case transcripts; only disjoint
        // inputs exercise the full budget (intersecting ones may finish
        // after a lucky early measurement).
        if out.disjoint {
            let lb = commcc::bounds::bgk_qubits_lower_bound(k as u64, out.messages);
            prop_assert!(out.qubits as f64 >= lb);
        }
    }

    /// The CONGEST simulator is deterministic: identical runs produce
    /// identical stats on arbitrary graphs.
    #[test]
    fn simulator_determinism(g in arb_graph()) {
        let cfg = Config::for_graph(&g);
        let run = || classical::apsp::exact_diameter(&g, cfg).unwrap();
        let a = run();
        let b = run();
        prop_assert_eq!(a.diameter, b.diameter);
        prop_assert_eq!(a.ledger.total_rounds(), b.ledger.total_rounds());
        prop_assert_eq!(a.ledger.total_bits(), b.ledger.total_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Both 3/2-approximations stay within their guarantee on random
    /// graphs (w.h.p. statement checked across the proptest corpus).
    #[test]
    fn approx_guarantees(g in arb_graph(), seed in 0u64..1000) {
        prop_assume!(g.len() >= 6);
        let cfg = Config::for_graph(&g);
        let truth = graphs::metrics::diameter(&g).unwrap();
        let c = classical::hprw::approx_diameter(
            &g,
            classical::hprw::HprwParams::classical(g.len(), seed),
            cfg,
        ).unwrap();
        // The HPRW guarantee is the floor form: ⌊2D/3⌋ ≤ D̄ ≤ D.
        prop_assert!(c.estimate <= truth && c.estimate >= (2 * truth) / 3);
        let q = quantum_diameter::approx::diameter(
            &g,
            ApproxParams::new(seed).with_failure_prob(1e-3),
            cfg,
        ).unwrap();
        prop_assert!(q.estimate <= truth && q.estimate >= (2 * truth) / 3);
    }
}
