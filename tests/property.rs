//! Property-based tests (proptest) over randomized graph and input spaces:
//! the paper's lemmas and guarantees as machine-checked invariants.

use congest_diameter::prelude::*;
use proptest::prelude::*;

use commcc::bit_gadget::BitGadgetReduction;
use commcc::hw::HwReduction;
use commcc::reduction::{check_instance, Reduction};
use commcc::stretch::StretchedReduction;
use graphs::tree::{EulerTour, RootedTree};
use quantum_diameter::dfs_window::{min_coverage, Windows};

/// A connected random graph described by (n, density, seed).
fn arb_graph() -> impl Strategy<Value = graphs::Graph> {
    (3usize..28, 0usize..3, 0u64..1_000_000).prop_map(|(n, density, seed)| {
        let p = [0.08, 0.15, 0.3][density];
        graphs::generators::random_connected(n, p, seed)
    })
}

/// A random connected tree.
fn arb_tree() -> impl Strategy<Value = graphs::Graph> {
    (2usize..30, 0u64..1_000_000).prop_map(|(n, seed)| graphs::generators::random_tree(n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed BFS (Figure 1) matches the centralized reference on
    /// arbitrary connected graphs and roots.
    #[test]
    fn distributed_bfs_matches_reference(g in arb_graph(), root_sel in 0usize..1000) {
        let root = NodeId::new(root_sel % g.len());
        let cfg = Config::for_graph(&g);
        let out = classical::bfs::build(&g, root, cfg).unwrap();
        let reference = graphs::traversal::Bfs::run(&g, root);
        for v in g.nodes() {
            prop_assert_eq!(Some(out.dists[v.index()]), reference.dist(v));
        }
        prop_assert_eq!(u64::from(out.depth) + 2, out.stats.rounds);
    }

    /// Lemma 1: with window width 2d over the Euler tour of a depth-d BFS
    /// tree, every node is covered by at least a d/2n fraction of windows.
    #[test]
    fn lemma1_coverage(g in arb_graph()) {
        let bfs = graphs::traversal::Bfs::run(&g, NodeId::new(0));
        let d = bfs.eccentricity().unwrap();
        prop_assume!(d >= 1);
        let tree = RootedTree::from_bfs(&bfs).unwrap();
        let tour = EulerTour::new(&tree);
        let windows = Windows::new(&tour, 2 * d as usize);
        let bound = f64::from(d) / (2.0 * g.len() as f64);
        prop_assert!(min_coverage(&windows) >= bound - 1e-12);
    }

    /// Maximizing the window function always yields the diameter
    /// (Equation 2's key property).
    #[test]
    fn window_max_peaks_at_diameter(g in arb_graph()) {
        let bfs = graphs::traversal::Bfs::run(&g, NodeId::new(0));
        let d = bfs.eccentricity().unwrap();
        let tree = RootedTree::from_bfs(&bfs).unwrap();
        let tour = EulerTour::new(&tree);
        let windows = Windows::new(&tour, 2 * d as usize);
        let eccs = graphs::metrics::eccentricities(&g).unwrap();
        let f = windows.window_max(&eccs);
        prop_assert_eq!(
            f.into_iter().max().unwrap(),
            graphs::metrics::diameter(&g).unwrap()
        );
    }

    /// The classical exact-diameter pipeline is correct on arbitrary
    /// connected graphs.
    #[test]
    fn classical_exact_diameter_correct(g in arb_graph()) {
        let cfg = Config::for_graph(&g);
        let out = classical::apsp::exact_diameter(&g, cfg).unwrap();
        prop_assert_eq!(Some(out.diameter), graphs::metrics::diameter(&g));
    }

    /// The quantum exact algorithm (Theorem 1) is correct on arbitrary
    /// connected graphs (δ = 10⁻³; a proptest run has ~24 cases so the
    /// expected number of quantum failures is ≪ 1).
    #[test]
    fn quantum_exact_diameter_correct(g in arb_graph(), seed in 0u64..1000) {
        let cfg = Config::for_graph(&g);
        let out = quantum_diameter::exact::diameter(
            &g,
            ExactParams::new(seed).with_failure_prob(1e-3),
            cfg,
        ).unwrap();
        prop_assert_eq!(Some(out.value), graphs::metrics::diameter(&g));
    }

    /// Trees: the DFS tour is an Euler tour (every edge visited exactly
    /// twice) and the distributed walk reproduces it from any start.
    #[test]
    fn dfs_walk_reproduces_tour_on_trees(g in arb_tree(), start_sel in 0usize..1000) {
        let cfg = Config::for_graph(&g);
        let b = classical::bfs::build(&g, NodeId::new(0), cfg).unwrap();
        let view = classical::TreeView::from(&b);
        let rooted = RootedTree::from_parents(&b.parents).unwrap();
        let tour = EulerTour::new(&rooted);
        let start = NodeId::new(start_sel % g.len());
        let steps = (tour.len() as u64).min(2 * u64::from(b.depth)).max(1);
        let walk = classical::dfs_walk::walk(&g, &view, start, steps, cfg).unwrap();
        let expected = tour.segment_first_visits(tour.tau(start), steps as usize);
        for (v, offset) in expected {
            prop_assert_eq!(walk.tau[v.index()], Some(offset as u64));
        }
    }

    /// The HW reduction (Theorem 8) satisfies Definition 3 on arbitrary
    /// inputs.
    #[test]
    fn hw_reduction_contract(s in 1usize..5, xm in any::<u64>(), ym in any::<u64>()) {
        let red = HwReduction::new(s);
        let k = red.k();
        let x: Vec<bool> = (0..k).map(|i| xm >> (i % 64) & 1 == 1).collect();
        let y: Vec<bool> = (0..k).map(|i| ym >> (i % 64) & 1 == 1).collect();
        prop_assert!(check_instance(&red, &x, &y).is_ok());
    }

    /// The bit-gadget reduction (Theorem 9 class) satisfies Definition 3 on
    /// arbitrary inputs, including non-power-of-two k.
    #[test]
    fn bit_gadget_contract(k in 2usize..24, xm in any::<u64>(), ym in any::<u64>()) {
        let red = BitGadgetReduction::new(k);
        let x: Vec<bool> = (0..k).map(|i| xm >> i & 1 == 1).collect();
        let y: Vec<bool> = (0..k).map(|i| ym >> i & 1 == 1).collect();
        prop_assert!(check_instance(&red, &x, &y).is_ok());
    }

    /// Figure 8: stretching preserves the reduction contract with the gap
    /// shifted by d.
    #[test]
    fn stretched_reduction_contract(
        k in 2usize..10,
        d in 1usize..7,
        xm in any::<u32>(),
        ym in any::<u32>(),
    ) {
        let red = StretchedReduction::new(BitGadgetReduction::new(k), d);
        let x: Vec<bool> = (0..k).map(|i| xm >> i & 1 == 1).collect();
        let y: Vec<bool> = (0..k).map(|i| ym >> i & 1 == 1).collect();
        prop_assert!(check_instance(&red, &x, &y).is_ok());
        prop_assert_eq!(red.num_nodes(), red.base().num_nodes() + red.b() * d);
    }

    /// Amplitude amplification finds a planted element whenever one exists
    /// (δ = 10⁻³ per call).
    #[test]
    fn amplify_finds_planted_elements(n in 8usize..256, target_sel in 0usize..1000, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let target = target_sel % n;
        let init = SearchState::uniform(n);
        let params = quantum::AmplifyParams::with_min_mass(1.0 / n as f64)
            .with_failure_prob(1e-3);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = quantum::amplify(&init, |x| x == target, params, &mut rng).unwrap();
        prop_assert_eq!(out.found, Some(target));
    }

    /// Grover evolution preserves the norm and matches the closed form for
    /// arbitrary marked fractions.
    #[test]
    fn grover_closed_form(n in 4usize..128, marked_count in 1usize..4, k in 0u64..12) {
        let init = SearchState::uniform(n);
        let mut s = init.clone();
        let m = marked_count.min(n);
        let marked = |x: usize| x < m;
        s.grover_iterations(&init, marked, k);
        let expect = SearchState::grover_success_probability(m as f64 / n as f64, k);
        prop_assert!((s.probability_of(marked) - expect).abs() < 1e-9);
        prop_assert!((s.norm_squared() - 1.0).abs() < 1e-9);
    }

    /// LP13 source detection matches the centralized reference for
    /// arbitrary source sets and parameters.
    #[test]
    fn source_detection_matches_reference(
        g in arb_graph(),
        src_mask in any::<u32>(),
        gamma in 1usize..5,
        sigma in 1u32..12,
    ) {
        let sources: Vec<NodeId> = (0..g.len())
            .filter(|&i| src_mask >> (i % 32) & 1 == 1)
            .map(NodeId::new)
            .collect();
        let cfg = Config::for_graph(&g);
        let out = classical::source_detection::detect(&g, &sources, gamma, sigma, cfg).unwrap();
        let expect = classical::source_detection::reference(&g, &sources, gamma, sigma);
        prop_assert_eq!(out.lists, expect);
    }

    /// The distributed girth computation (PRT12) matches the centralized
    /// edge-removal reference on arbitrary connected graphs.
    #[test]
    fn distributed_girth_matches_reference(g in arb_graph()) {
        let cfg = Config::for_graph(&g);
        let out = classical::girth::compute(&g, cfg).unwrap();
        prop_assert_eq!(out.girth, graphs::metrics::girth(&g));
    }

    /// The BCW98 quantum disjointness protocol is correct and its
    /// transcript respects the BGK lower bound on arbitrary inputs.
    #[test]
    fn qdisj_protocol_correct(k in 4usize..128, xm in any::<u128>(), ym in any::<u128>(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let x: Vec<bool> = (0..k).map(|i| xm >> (i % 128) & 1 == 1).collect();
        let y: Vec<bool> = (0..k).map(|i| ym >> (i % 128) & 1 == 1).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = commcc::qdisj::run(&x, &y, 1e-3, &mut rng).unwrap();
        prop_assert_eq!(out.disjoint, commcc::disj::eval(&x, &y));
        if let Some(w) = out.witness {
            prop_assert!(x[w] && y[w]);
        }
        // The BGK bound constrains worst-case transcripts; only disjoint
        // inputs exercise the full budget (intersecting ones may finish
        // after a lucky early measurement).
        if out.disjoint {
            let lb = commcc::bounds::bgk_qubits_lower_bound(k as u64, out.messages);
            prop_assert!(out.qubits as f64 >= lb);
        }
    }

    /// The CONGEST simulator is deterministic: identical runs produce
    /// identical stats on arbitrary graphs.
    #[test]
    fn simulator_determinism(g in arb_graph()) {
        let cfg = Config::for_graph(&g);
        let run = || classical::apsp::exact_diameter(&g, cfg).unwrap();
        let a = run();
        let b = run();
        prop_assert_eq!(a.diameter, b.diameter);
        prop_assert_eq!(a.ledger.total_rounds(), b.ledger.total_rounds());
        prop_assert_eq!(a.ledger.total_bits(), b.ledger.total_bits());
    }
}

/// Shard counts exercised by the scheduler-equivalence properties, plus
/// any extra count injected via `QD_TEST_SHARDS` (used by `check.sh`).
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![2usize, 4, 7];
    if let Some(k) = std::env::var("QD_TEST_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if k >= 1 && !counts.contains(&k) {
            counts.push(k);
        }
    }
    counts
}

/// Min-id flood: the message-heavy scheduler workload (every node floods
/// the smallest id it has seen until quiescence).
#[derive(Clone, Debug)]
struct IdMsg(u32, usize);
impl congest::Payload for IdMsg {
    fn size_bits(&self) -> usize {
        congest::bits::for_node(self.1)
    }
}
struct MinIdFlood {
    best: u32,
}
impl congest::NodeProgram for MinIdFlood {
    type Msg = IdMsg;
    type Output = u32;
    fn on_round(&mut self, ctx: &mut congest::RoundCtx<'_, IdMsg>) -> congest::Status {
        let mut improved = ctx.round() == 0;
        for &(_, IdMsg(v, _)) in ctx.inbox() {
            if v < self.best {
                self.best = v;
                improved = true;
            }
        }
        if improved {
            ctx.broadcast(IdMsg(self.best, ctx.num_nodes()));
        }
        congest::Status::Halted
    }
    fn finish(self, _node: NodeId) -> u32 {
        self.best
    }
}

/// Runs the flood under `cfg` with a recorder installed, returning
/// everything the determinism contract covers: outputs, stats, and the
/// full trace event stream.
fn flood_run(g: &Graph, cfg: Config) -> (RunStats, Vec<u32>, Vec<trace::TraceEvent>) {
    let recorder = trace::Recorder::shared();
    let (stats, outputs) = {
        let _guard = trace::install(recorder.clone());
        let mut net = congest::Network::new(g, cfg, |v| MinIdFlood { best: u32::from(v) });
        let stats = net.run_until_quiescent(100_000).unwrap();
        (stats, net.into_outputs())
    };
    let events = recorder.borrow_mut().take();
    (stats, outputs, events)
}

/// The *seed* scheduler's semantics, hand-rolled: per-round reallocation,
/// per-node inbox sort, linear duplicate scan. Returns the flood's outputs
/// and the accounting the seed scheduler would have reported, as the
/// pre-change reference the reworked scheduler must still match.
fn seed_reference_flood(g: &Graph) -> (Vec<u32>, u64, u64, u64) {
    let n = g.len();
    let msg_bits = congest::bits::for_node(n) as u64;
    let mut best: Vec<u32> = (0..n as u32).collect();
    let mut inboxes: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let (mut rounds, mut messages, mut total_bits) = (0u64, 0u64, 0u64);
    let mut in_flight = 0usize;
    loop {
        if rounds > 0 && in_flight == 0 {
            break;
        }
        let mut current = std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
        in_flight = 0;
        for i in 0..n {
            let mut inbox = std::mem::take(&mut current[i]);
            inbox.sort_by_key(|&(from, _)| from);
            let mut improved = rounds == 0;
            for &(_, v) in &inbox {
                if v < best[i] {
                    best[i] = v;
                    improved = true;
                }
            }
            if !improved {
                continue;
            }
            let mut sent_to: Vec<usize> = Vec::new();
            for &to in g.neighbors(NodeId::new(i)) {
                assert!(!sent_to.contains(&to.index()));
                sent_to.push(to.index());
                messages += 1;
                total_bits += msg_bits;
                inboxes[to.index()].push((i, best[i]));
                in_flight += 1;
            }
        }
        rounds += 1;
    }
    (best, rounds, messages, total_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole's determinism contract on a message-heavy flood:
    /// sharded execution is byte-identical to sequential (outputs, stats,
    /// trace events), and the reworked sequential scheduler still matches
    /// the seed scheduler's outputs and accounting.
    #[test]
    fn sharded_flood_equivalence(g in arb_graph()) {
        let cfg = Config::for_graph(&g);
        let (stats, outputs, events) = flood_run(&g, cfg);

        // Against the pre-change sequential scheduler's semantics.
        let (seed_outputs, seed_rounds, seed_messages, seed_bits) = seed_reference_flood(&g);
        prop_assert_eq!(&outputs, &seed_outputs);
        prop_assert_eq!(stats.rounds, seed_rounds);
        prop_assert_eq!(stats.messages, seed_messages);
        prop_assert_eq!(stats.total_bits, seed_bits);
        prop_assert!(outputs.iter().all(|&b| b == 0));

        // Across shard counts.
        for shards in shard_counts() {
            let (stats_k, outputs_k, events_k) = flood_run(&g, cfg.with_shards(shards));
            prop_assert_eq!(stats_k, stats, "stats diverged at {} shards", shards);
            prop_assert_eq!(&outputs_k, &outputs, "outputs diverged at {} shards", shards);
            prop_assert_eq!(&events_k, &events, "trace diverged at {} shards", shards);
        }
    }

    /// The same contract on the Figure 2 pipelined wave phase — whose
    /// program emits `Wave` trace events from *inside* `on_round`, so this
    /// exercises the worker-thread trace capture path — checked against
    /// the centralized per-node `max_u d(u, v)` ground truth.
    #[test]
    fn sharded_waves_equivalence(g in arb_graph()) {
        let cfg = Config::for_graph(&g);
        let root = NodeId::new(0);
        let b = classical::bfs::build(&g, root, cfg).unwrap();
        let view = classical::TreeView::from(&b);
        let steps = 2 * (g.len() as u64 - 1);
        let dfs = classical::dfs_walk::walk(&g, &view, root, steps, cfg).unwrap();
        let sources: Vec<(NodeId, u64)> = g
            .nodes()
            .map(|v| (v, dfs.tau[v.index()].unwrap()))
            .collect();
        let duration = 2 * steps + g.len() as u64 + 2;

        let wave_run = |shards: usize| {
            let recorder = trace::Recorder::shared();
            let out = {
                let _guard = trace::install(recorder.clone());
                classical::waves::run(&g, &sources, duration, cfg.with_shards(shards)).unwrap()
            };
            let events = recorder.borrow_mut().take();
            (out.max_dist, out.stats, events)
        };

        let (max_dist, stats, events) = wave_run(1);
        for v in g.nodes() {
            let expect = g
                .nodes()
                .map(|u| graphs::traversal::Bfs::run(&g, u).dist(v).unwrap())
                .max()
                .unwrap();
            prop_assert_eq!(max_dist[v.index()], expect, "node {}", v);
        }
        for shards in shard_counts() {
            let (max_dist_k, stats_k, events_k) = wave_run(shards);
            prop_assert_eq!(&max_dist_k, &max_dist, "outputs diverged at {} shards", shards);
            prop_assert_eq!(stats_k, stats, "stats diverged at {} shards", shards);
            prop_assert_eq!(&events_k, &events, "trace diverged at {} shards", shards);
        }
    }
}

/// Timed-wakeup beacon workload: every node sleeps until its own wake
/// round, broadcasts its id once, and goes quiet; receivers accumulate
/// what they hear but stay message-driven. Scattered wakes leave long
/// fully-quiescent stretches, so this is the fast-forward stress case —
/// and nodes woken early by a neighbour's beacon re-vote `Sleep`, which
/// doubles wakeup-heap entries on purpose.
struct Beacon {
    wake: u64,
    n: usize,
    heard: u64,
}
impl congest::NodeProgram for Beacon {
    type Msg = IdMsg;
    type Output = u64;
    fn on_round(&mut self, ctx: &mut congest::RoundCtx<'_, IdMsg>) -> congest::Status {
        for &(_, IdMsg(v, _)) in ctx.inbox() {
            self.heard += u64::from(v);
        }
        if ctx.round() == self.wake {
            ctx.broadcast(IdMsg(ctx.node().index() as u32, self.n));
        }
        if ctx.round() < self.wake {
            congest::Status::Sleep(self.wake)
        } else {
            congest::Status::Halted
        }
    }
    fn finish(self, _node: NodeId) -> u64 {
        self.heard
    }
}

/// Runs the beacon workload under `cfg`, returning outputs, stats, the
/// trace stream, and how many node executions the scheduler paid for.
fn beacon_run(
    g: &Graph,
    cfg: Config,
    wakes: &[u64],
) -> (RunStats, Vec<u64>, Vec<trace::TraceEvent>, u64) {
    let recorder = trace::Recorder::shared();
    let (stats, outputs, scheduled) = {
        let _guard = trace::install(recorder.clone());
        let mut net = congest::Network::new(g, cfg, |v| Beacon {
            wake: wakes[v.index()],
            n: g.len(),
            heard: 0,
        });
        let cap = wakes.iter().max().unwrap() + 4;
        let stats = net.run_until_quiescent(cap).unwrap();
        let scheduled = net.scheduled_nodes();
        (stats, net.into_outputs(), scheduled)
    };
    let events = recorder.borrow_mut().take();
    (stats, outputs, events, scheduled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Active-set scheduling is byte-identical to the dense reference on
    /// the message-heavy flood (outputs, stats, trace events), at every
    /// shard count. The flood keeps most nodes halted after their last
    /// improvement, so halted-node skipping is on the hot path here.
    #[test]
    fn scheduling_flood_equivalence(g in arb_graph()) {
        let base = Config::for_graph(&g);
        let (stats, outputs, events) = flood_run(&g, base.with_scheduling(Scheduling::Dense));
        let mut shards = vec![1usize];
        shards.extend(shard_counts());
        // Compare through `expand_round_skips`: fast-forwarded stretches
        // appear as one compact `RoundSkip` in sparse traces, equivalent by
        // contract to the dense run's explicit zero-delivery ticks.
        let events = trace::expand_round_skips(events);
        for k in shards {
            let cfg = base.with_shards(k).with_scheduling(Scheduling::ActiveSet);
            let (s, o, e) = flood_run(&g, cfg);
            let e = trace::expand_round_skips(e);
            prop_assert_eq!(s, stats, "stats diverged (active-set, {} shards)", k);
            prop_assert_eq!(&o, &outputs, "outputs diverged (active-set, {} shards)", k);
            prop_assert_eq!(&e, &events, "trace diverged (active-set, {} shards)", k);
        }
    }

    /// Dense vs active-set on the Figure 2 wave phase, whose sources vote
    /// `Sleep(start)` until their staggered start rounds — the production
    /// workload the timed-wakeup queue was built for.
    #[test]
    fn scheduling_waves_equivalence(g in arb_graph()) {
        let cfg = Config::for_graph(&g);
        let root = NodeId::new(0);
        let b = classical::bfs::build(&g, root, cfg).unwrap();
        let view = classical::TreeView::from(&b);
        let steps = 2 * (g.len() as u64 - 1);
        let dfs = classical::dfs_walk::walk(&g, &view, root, steps, cfg).unwrap();
        let sources: Vec<(NodeId, u64)> = g
            .nodes()
            .map(|v| (v, dfs.tau[v.index()].unwrap()))
            .collect();
        let duration = 2 * steps + g.len() as u64 + 2;

        let wave_run = |run_cfg: Config| {
            let recorder = trace::Recorder::shared();
            let out = {
                let _guard = trace::install(recorder.clone());
                classical::waves::run(&g, &sources, duration, run_cfg).unwrap()
            };
            let events = recorder.borrow_mut().take();
            (out.max_dist, out.stats, events)
        };

        let (max_dist, stats, events) = wave_run(cfg.with_scheduling(Scheduling::Dense));
        let events = trace::expand_round_skips(events);
        for k in [1usize, 2, 4] {
            for fast_forward in [true, false] {
                let (max_dist_k, stats_k, events_k) = wave_run(
                    cfg.with_shards(k)
                        .with_scheduling(Scheduling::ActiveSet)
                        .with_fast_forward(fast_forward),
                );
                let events_k = trace::expand_round_skips(events_k);
                prop_assert_eq!(
                    &max_dist_k, &max_dist,
                    "outputs diverged (active-set, {} shards, fast_forward={})", k, fast_forward
                );
                prop_assert_eq!(
                    stats_k, stats,
                    "stats diverged (active-set, {} shards, fast_forward={})", k, fast_forward
                );
                prop_assert_eq!(
                    &events_k, &events,
                    "trace diverged (active-set, {} shards, fast_forward={})", k, fast_forward
                );
            }
        }
    }

    /// The beacon workload's scattered wakes leave long fully-quiescent
    /// stretches: fast-forward must skip them without perturbing stats,
    /// outputs, or the round-tick trace, and disabling it must change the
    /// amount of work done — never the result.
    #[test]
    fn scheduling_beacon_fast_forward_equivalence(g in arb_graph(), wseed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(wseed);
        let wakes: Vec<u64> = (0..g.len()).map(|_| rng.random_range(0..60)).collect();
        let base = Config::for_graph(&g);
        let (stats, outputs, events, dense_sched) =
            beacon_run(&g, base.with_scheduling(Scheduling::Dense), &wakes);
        // Dense pays for every node every round; that product is the
        // baseline the active-set modes must undercut (or at worst match).
        prop_assert_eq!(dense_sched, g.len() as u64 * stats.rounds);
        let events = trace::expand_round_skips(events);
        for k in [1usize, 2, 4] {
            for fast_forward in [true, false] {
                let cfg = base
                    .with_shards(k)
                    .with_scheduling(Scheduling::ActiveSet)
                    .with_fast_forward(fast_forward);
                let (s, o, e, sched) = beacon_run(&g, cfg, &wakes);
                let e = trace::expand_round_skips(e);
                prop_assert_eq!(
                    s, stats,
                    "stats diverged ({} shards, fast_forward={})", k, fast_forward
                );
                prop_assert_eq!(
                    &o, &outputs,
                    "outputs diverged ({} shards, fast_forward={})", k, fast_forward
                );
                prop_assert_eq!(
                    &e, &events,
                    "trace diverged ({} shards, fast_forward={})", k, fast_forward
                );
                prop_assert!(sched <= dense_sched, "active-set scheduled more than dense");
            }
        }
    }
}

/// Runs the paper's classical driver suite — BFS (Figure 1), the exact
/// APSP pipeline, a convergecast aggregation, and a single-node
/// eccentricity — back-to-back under one recorder, returning per-driver
/// output keys, per-driver stats, and the combined trace stream. Every
/// driver in the suite now votes `Halted`/`Active` with `quiet_until`
/// declarations instead of idling, so this is the coverage for the
/// vote-and-wake contract across the Table 1 workloads.
fn driver_suite_run(
    g: &Graph,
    cfg: Config,
) -> (Vec<String>, Vec<RunStats>, Vec<trace::TraceEvent>) {
    let recorder = trace::Recorder::shared();
    let (keys, stats) = {
        let _guard = trace::install(recorder.clone());
        let mut keys = Vec::new();
        let mut stats = Vec::new();
        let root = NodeId::new(0);

        let b = classical::bfs::build(g, root, cfg).unwrap();
        keys.push(format!("bfs {:?} {:?}", b.dists, b.parents));
        stats.push(b.stats);

        let apsp = classical::apsp::exact_diameter(g, cfg).unwrap();
        keys.push(format!(
            "apsp {} {:?} {} {} {}",
            apsp.diameter,
            apsp.eccentricities,
            apsp.ledger.total_rounds(),
            apsp.ledger.total_messages(),
            apsp.ledger.total_bits(),
        ));

        let tree = classical::TreeView::from(&b);
        let values: Vec<u64> = (0..g.len() as u64).collect();
        let agg = classical::aggregate::convergecast(
            g,
            &tree,
            &values,
            congest::bits::for_node(g.len()),
            classical::aggregate::Op::Max,
            cfg,
        )
        .unwrap();
        keys.push(format!("aggregate {} {}", agg.value, agg.witness));
        stats.push(agg.stats);

        let e = classical::ecc::compute(g, root, cfg).unwrap();
        keys.push(format!("ecc {}", e.ecc));
        stats.push(e.stats);

        (keys, stats)
    };
    let events = recorder.borrow_mut().take();
    (keys, stats, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every hot classical driver — BFS, APSP, convergecast aggregation,
    /// and eccentricity — is byte-identical between the dense reference
    /// and active-set scheduling, across shard counts {1, 2, 4} and
    /// fast-forward on/off: same outputs, same `RunStats` (modulo the
    /// scheduling telemetry `PartialEq` deliberately excludes), same
    /// skip-expanded trace stream.
    #[test]
    fn scheduling_driver_suite_equivalence(g in arb_graph()) {
        let base = Config::for_graph(&g);
        let (keys, stats, events) = driver_suite_run(&g, base.with_scheduling(Scheduling::Dense));
        let events = trace::expand_round_skips(events);
        for k in [1usize, 2, 4] {
            for fast_forward in [true, false] {
                let cfg = base
                    .with_shards(k)
                    .with_scheduling(Scheduling::ActiveSet)
                    .with_fast_forward(fast_forward);
                let (keys_k, stats_k, events_k) = driver_suite_run(&g, cfg);
                let events_k = trace::expand_round_skips(events_k);
                prop_assert_eq!(
                    &keys_k, &keys,
                    "outputs diverged ({} shards, fast_forward={})", k, fast_forward
                );
                prop_assert_eq!(
                    &stats_k, &stats,
                    "stats diverged ({} shards, fast_forward={})", k, fast_forward
                );
                prop_assert_eq!(
                    &events_k, &events,
                    "trace diverged ({} shards, fast_forward={})", k, fast_forward
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Both 3/2-approximations stay within their guarantee on random
    /// graphs (w.h.p. statement checked across the proptest corpus).
    #[test]
    fn approx_guarantees(g in arb_graph(), seed in 0u64..1000) {
        prop_assume!(g.len() >= 6);
        let cfg = Config::for_graph(&g);
        let truth = graphs::metrics::diameter(&g).unwrap();
        let c = classical::hprw::approx_diameter(
            &g,
            classical::hprw::HprwParams::classical(g.len(), seed),
            cfg,
        ).unwrap();
        // The HPRW guarantee is the floor form: ⌊2D/3⌋ ≤ D̄ ≤ D.
        prop_assert!(c.estimate <= truth && c.estimate >= (2 * truth) / 3);
        let q = quantum_diameter::approx::diameter(
            &g,
            ApproxParams::new(seed).with_failure_prob(1e-3),
            cfg,
        ).unwrap();
        prop_assert!(q.estimate <= truth && q.estimate >= (2 * truth) / 3);
    }
}
