//! Metric ↔ trace ↔ ledger reconciliation: the cost-metrics registry is an
//! observer of the same events the trace layer and the simulator's own
//! `RunStats`/`RoundsLedger` accounting see, so every total must agree
//! *exactly* — across worker shards and scheduling modes, which are
//! throughput knobs and must never change what gets charged.

use congest::{Config, Scheduling};
use congest_diameter::prelude::*;
use graphs::generators;
use quantum_diameter::exact::ExactParams;

/// One classical APSP run with a metrics registry and a trace recorder
/// both installed; returns the registry, the trace summary, and the run's
/// own ledger.
fn instrumented_apsp(
    g: &graphs::Graph,
    cfg: Config,
) -> (metrics::Registry, trace::Summary, congest::RoundsLedger) {
    let registry = metrics::Registry::shared();
    let recorder = trace::Recorder::shared();
    let out = {
        let _m = metrics::install(registry.clone());
        let _t = trace::install(recorder.clone());
        classical::apsp::exact_diameter(g, cfg).unwrap()
    };
    let summary = trace::Summary::from_events(&recorder.borrow_mut().take());
    let registry = std::rc::Rc::try_unwrap(registry).unwrap().into_inner();
    (registry, summary, out.ledger)
}

/// Every charged byte agrees three ways: metrics counters == trace
/// delivered totals == the run's own per-phase ledger.
#[test]
fn cost_metrics_reconcile_with_trace_and_ledger() {
    let g = generators::random_sparse(40, 5.0, 7);
    let cfg = Config::for_graph(&g);
    let (registry, summary, ledger) = instrumented_apsp(&g, cfg);

    let messages = registry.counter(metrics::names::MESSAGES);
    let payload = registry.counter(metrics::names::PAYLOAD_BITS);
    let wire = registry.counter(metrics::names::WIRE_BITS);
    let rounds = registry.counter(metrics::names::ROUNDS);

    // Metrics == trace: both charge at the exact commit point of a send.
    assert_eq!(messages, summary.messages_delivered);
    assert_eq!(payload, summary.bits_delivered);

    // Metrics == the simulator's own books.
    assert_eq!(messages, ledger.total_messages());
    assert_eq!(payload, ledger.total_bits());
    assert_eq!(rounds, ledger.total_rounds());
    assert_eq!(registry.counter(metrics::names::VIOLATIONS), 0);

    // The cost model is applied message-by-message, so the wire total is
    // exactly payload + framing — no rounding residue.
    assert_eq!(wire, payload + registry.cost().header_bits * messages);
    assert!(messages > 0 && payload > 0);
}

/// The message-width histogram is the same stream the counters saw:
/// its count and sum equal the message/payload counters, and the bucket
/// counts partition the count.
#[test]
fn histogram_buckets_reconcile_with_counters() {
    let g = generators::torus(6, 6);
    let (registry, _, _) = instrumented_apsp(&g, Config::for_graph(&g));

    let h = registry
        .histogram(metrics::names::MESSAGE_BITS)
        .expect("message-width histogram recorded");
    assert_eq!(h.count(), registry.counter(metrics::names::MESSAGES));
    assert_eq!(h.sum(), registry.counter(metrics::names::PAYLOAD_BITS));
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    assert_eq!(h.cumulative_counts().last().copied(), Some(h.count()));
}

/// Worker shards and round-scheduling modes are throughput knobs: the
/// registry a run produces must be identical (`Registry::eq` ignores
/// wall-clock spans and the scheduler/memory telemetry family, which
/// legitimately differs by mode) across the full {1, 2, 4} ×
/// {Dense, ActiveSet} matrix, and so must the trace totals it
/// reconciles against.
#[test]
fn registries_are_identical_across_shards_and_scheduling() {
    let g = generators::random_sparse(36, 5.0, 3);
    let base = Config::for_graph(&g);
    let (reference, ref_summary, _) = instrumented_apsp(&g, base);

    for shards in [1usize, 2, 4] {
        for sched in [Scheduling::Dense, Scheduling::ActiveSet] {
            let cfg = base.with_shards(shards).with_scheduling(sched);
            let (registry, summary, _) = instrumented_apsp(&g, cfg);
            assert_eq!(
                registry, reference,
                "registry diverged at shards={shards} sched={sched:?}"
            );
            assert_eq!(
                summary.messages_delivered, ref_summary.messages_delivered,
                "trace diverged at shards={shards} sched={sched:?}"
            );
            assert_eq!(summary.bits_delivered, ref_summary.bits_delivered);
        }
    }
}

/// A full Theorem 1 run charges its quantum phase through the oracle
/// counters, and those reconcile exactly with the run's `OracleCost` and
/// measured per-application `DistributedOracle` schedule.
#[test]
fn oracle_counters_reconcile_with_the_exact_run() {
    let g = generators::torus(6, 6);
    let cfg = Config::for_graph(&g);
    let registry = metrics::Registry::shared();
    let recorder = trace::Recorder::shared();
    let run = {
        let _m = metrics::install(registry.clone());
        let _t = trace::install(recorder.clone());
        quantum_diameter::exact::diameter(&g, ExactParams::new(5).with_failure_prob(1e-3), cfg)
            .unwrap()
    };
    let summary = trace::Summary::from_events(&recorder.borrow_mut().take());
    let registry = registry.borrow();

    assert_eq!(
        registry.counter(metrics::names::ORACLE_SETUP_OPS),
        run.oracle.setup_ops()
    );
    assert_eq!(
        registry.counter(metrics::names::ORACLE_EVALUATION_OPS),
        run.oracle.evaluation_ops()
    );
    // The Theorem 7 conversion: charged applications × measured schedule.
    assert_eq!(
        registry.counter(metrics::names::ORACLE_ROUNDS),
        run.quantum_rounds
    );
    assert_eq!(
        registry.counter(metrics::names::ORACLE_QUBITS),
        run.oracle_schedule.qubits_for(&run.oracle)
    );
    assert_eq!(
        registry.counter(metrics::names::ORACLE_MESSAGES),
        run.oracle_schedule.messages_for(&run.oracle)
    );
    assert!(registry.counter(metrics::names::ORACLE_QUBITS) > 0);

    // Classical traffic reconciles against the trace as usual.
    assert_eq!(
        registry.counter(metrics::names::MESSAGES),
        summary.messages_delivered
    );
    assert_eq!(
        registry.counter(metrics::names::PAYLOAD_BITS),
        summary.bits_delivered
    );

    // Phase-round counters (simulated + derived families together) are the
    // same spans the trace summary aggregates.
    let phase_total: u64 = registry
        .counters()
        .iter()
        .filter(|(name, _)| {
            name.starts_with(metrics::names::PHASE_ROUNDS)
                || name.starts_with(metrics::names::PHASE_ROUNDS_DERIVED)
        })
        .map(|(_, v)| v)
        .sum();
    assert_eq!(phase_total, summary.total_phase_rounds());

    // The analytic memory estimate lands in the gauges.
    assert_eq!(
        registry.gauge(metrics::names::PER_NODE_QUBITS),
        Some(run.memory.per_node_qubits as f64)
    );
    assert_eq!(
        registry.gauge(metrics::names::LEADER_QUBITS),
        Some(run.memory.leader_qubits as f64)
    );
}

/// With no registry installed, nothing observes the run — and the run is
/// not observable: a later installed-registry run must charge identical
/// totals (installation cannot perturb the protocol).
#[test]
fn metrics_are_strictly_opt_in() {
    let g = generators::random_sparse(30, 5.0, 1);
    let cfg = Config::for_graph(&g);
    assert!(!metrics::enabled());
    let bare = classical::apsp::exact_diameter(&g, cfg).unwrap();

    let registry = metrics::Registry::shared();
    let instrumented = {
        let _m = metrics::install(registry.clone());
        assert!(metrics::enabled());
        classical::apsp::exact_diameter(&g, cfg).unwrap()
    };
    assert!(!metrics::enabled());

    assert_eq!(bare.diameter, instrumented.diameter);
    assert_eq!(
        bare.ledger.total_messages(),
        instrumented.ledger.total_messages()
    );
    assert_eq!(
        registry.borrow().counter(metrics::names::MESSAGES),
        instrumented.ledger.total_messages()
    );
}
