//! Flight-recorder and sampled-trace determinism across the execution
//! matrix: the observability layer is an observer of the *protocol*, so
//! its output must be byte-identical across worker shards, scheduling
//! modes, and fast-forwarding — the three knobs that change *how* a run
//! executes without changing *what* it computes. A fast-forwarded quiet
//! stretch enters the ring as one `RoundSkip`-mirroring span record, and
//! the window view must re-expand it to exactly the records a stepped run
//! produces.

use congest_diameter::prelude::*;
use proptest::prelude::*;

use congest::{FaultPlan, RunStats};
use trace::flight::{self, FlightRecorder, SamplePolicy, SampledSink};
use trace::{RoundRecord, TraceEvent};

/// A small id message, sized under the O(log n) budget of the smallest
/// test graph (the flight recorder charges its bits).
#[derive(Clone, Debug)]
struct IdMsg(u32);
impl congest::Payload for IdMsg {
    fn size_bits(&self) -> usize {
        16
    }
}

/// Min-id flood whose nodes sleep until staggered wake rounds: the
/// `Status::Sleep` stretches give fast-forward real `RoundSkip` spans to
/// compress, and the wake stagger keeps the active set sparse so dense
/// and active-set scheduling execute genuinely different node counts
/// over identical traffic.
struct SleepyFlood {
    wake: u64,
    best: u32,
}

impl congest::NodeProgram for SleepyFlood {
    type Msg = IdMsg;
    type Output = u32;

    fn on_round(&mut self, ctx: &mut congest::RoundCtx<'_, IdMsg>) -> congest::Status {
        let mut improved = ctx.round() == self.wake;
        for &(_, IdMsg(v)) in ctx.inbox() {
            if v < self.best {
                self.best = v;
                improved = true;
            }
        }
        if improved {
            ctx.broadcast(IdMsg(self.best));
        }
        if ctx.round() < self.wake {
            congest::Status::Sleep(self.wake)
        } else {
            congest::Status::Halted
        }
    }

    fn finish(self, _node: NodeId) -> u32 {
        self.best
    }
}

/// Everything one observed run produces: the simulator's own stats, the
/// flight recorder's normalized window + lifetime totals, and the
/// deterministically sampled event stream.
struct Observed {
    stats: RunStats,
    window: Vec<RoundRecord>,
    totals: RoundRecord,
    rounds: u64,
    spans: usize,
    sampled: Vec<TraceEvent>,
    outputs: Vec<u32>,
}

/// Runs the sleepy flood under a flight recorder and a [`SampledSink`]
/// (rate 0.25, seeded by `sample_seed`) wrapped around an in-memory
/// recorder. The sampled stream is normalized with
/// [`trace::expand_round_skips`] before comparison: a fast-forwarding run
/// legitimately *represents* a quiet stretch as one `RoundSkip` event,
/// and the contract is that the normalized streams are byte-identical.
fn observed_run(g: &Graph, cfg: Config, sample_seed: u64, stagger: u64) -> Observed {
    let recorder = FlightRecorder::shared();
    let sink = std::rc::Rc::new(std::cell::RefCell::new(SampledSink::new(
        SamplePolicy::new(sample_seed, 0.25),
        trace::Recorder::new(),
    )));
    let (stats, outputs) = {
        let _flight = flight::install(recorder.clone());
        let _trace = trace::install(sink.clone() as trace::SharedSink);
        let mut net = congest::Network::new(g, cfg, |v| SleepyFlood {
            wake: v.index() as u64 * stagger % 97,
            best: u32::from(v),
        });
        let stats = net.run_until_quiescent(100_000).unwrap();
        (stats, net.into_outputs())
    };
    let rec = recorder.borrow();
    let sampled = trace::expand_round_skips(sink.borrow().inner().events().to_vec());
    Observed {
        stats,
        window: rec.window(),
        totals: rec.totals(),
        rounds: rec.rounds(),
        spans: rec.records().filter(|r| r.span > 1).count(),
        sampled,
        outputs,
    }
}

/// A connected random graph for the determinism matrix.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (6usize..28, 0u64..1_000_000)
        .prop_map(|(n, seed)| graphs::generators::random_connected(n, 0.15, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole's determinism contract: flight windows, lifetime
    /// totals, and the sampled trace are byte-identical across the full
    /// {1, 2, 4} shards × {Dense, ActiveSet} × fast-forward {on, off}
    /// matrix — a `RoundSkip` span must aggregate exactly as the rounds
    /// it covers would have, record by record.
    #[test]
    fn flight_and_sampled_trace_identical_across_matrix(
        g in arb_graph(),
        sample_seed in 0u64..1_000,
    ) {
        let base = Config::for_graph(&g);
        let reference = observed_run(&g, base, sample_seed, 7);
        prop_assert!(reference.totals.messages > 0, "inert workload");
        for shards in [1usize, 2, 4] {
            for sched in [Scheduling::Dense, Scheduling::ActiveSet] {
                for ff in [true, false] {
                    let cfg = base
                        .with_shards(shards)
                        .with_scheduling(sched)
                        .with_fast_forward(ff);
                    let run = observed_run(&g, cfg, sample_seed, 7);
                    let knob = format!("shards={shards} sched={sched:?} ff={ff}");
                    prop_assert_eq!(&run.stats, &reference.stats, "stats diverged at {}", &knob);
                    prop_assert_eq!(&run.outputs, &reference.outputs, "answers diverged at {}", &knob);
                    prop_assert_eq!(run.rounds, reference.rounds, "round count diverged at {}", &knob);
                    prop_assert_eq!(&run.window, &reference.window, "window diverged at {}", &knob);
                    prop_assert_eq!(&run.totals, &reference.totals, "totals diverged at {}", &knob);
                    prop_assert_eq!(&run.sampled, &reference.sampled, "sample diverged at {}", &knob);
                }
            }
        }
    }

    /// Under a seeded fault plan the recorder's fault column replays
    /// byte-identically too: fault fates are a pure function of
    /// (plan seed, round, edge), so the per-round records they land in
    /// cannot move across shards or scheduling modes.
    #[test]
    fn flight_fault_column_replays_across_matrix(
        g in arb_graph(),
        fault_seed in 0u64..1_000,
    ) {
        let plan = FaultPlan::new(fault_seed)
            .with_drop(0.08)
            .with_corrupt(0.04)
            .with_delay(0.15, 3);
        let base = Config::for_graph(&g).with_faults(plan);
        let reference = observed_run(&g, base, 0, 7);
        for shards in [2usize, 4] {
            for sched in [Scheduling::Dense, Scheduling::ActiveSet] {
                let cfg = base.with_shards(shards).with_scheduling(sched);
                let run = observed_run(&g, cfg, 0, 7);
                let knob = format!("shards={shards} sched={sched:?}");
                prop_assert_eq!(&run.window, &reference.window, "window diverged at {}", &knob);
                prop_assert_eq!(&run.totals, &reference.totals, "totals diverged at {}", &knob);
            }
        }
    }
}

/// A long staggered-wake run on a path: fast-forward *must* compress
/// quiet stretches into span records, and the stepped reference must
/// normalize to the identical window and totals.
#[test]
fn fast_forward_spans_aggregate_exactly_as_stepped_rounds() {
    let g = graphs::generators::path(24);
    let base = Config::for_graph(&g).with_scheduling(Scheduling::ActiveSet);
    let fast = observed_run(&g, base.with_fast_forward(true), 3, 13);
    let stepped = observed_run(&g, base.with_fast_forward(false), 3, 13);
    assert!(
        fast.spans > 0,
        "workload produced no quiet stretch to fast-forward"
    );
    assert_eq!(stepped.spans, 0, "a stepped run must not contain spans");
    assert_eq!(fast.rounds, stepped.rounds);
    assert_eq!(fast.window, stepped.window);
    assert_eq!(fast.totals, stepped.totals);
    assert_eq!(fast.stats, stepped.stats);
    // The span compression is real: fewer physical records than rounds.
    assert!((fast.rounds as usize) > fast.window.len() - fast.spans);
}

/// Rebuilding a recorder from the run's own full-fidelity event stream
/// (`FlightRecorder::from_events`) reproduces the live-charged records —
/// the recorder and the trace are two views of one accounting, end to
/// end through the real simulator.
#[test]
fn event_sourced_recorder_matches_live_charging_end_to_end() {
    let g = graphs::generators::random_connected(20, 0.2, 11);
    let cfg = Config::for_graph(&g);
    let recorder = FlightRecorder::shared();
    let full = trace::Recorder::shared();
    let stats = {
        let _flight = flight::install(recorder.clone());
        let _trace = trace::install(full.clone());
        let mut net = congest::Network::new(&g, cfg, |v| SleepyFlood {
            wake: (v.index() as u64 * 7) % 23,
            best: u32::from(v),
        });
        net.run_until_quiescent(100_000).unwrap()
    };
    let live = recorder.borrow();
    let replayed =
        FlightRecorder::from_events(trace::flight::DEFAULT_CAPACITY, full.borrow().events());
    assert_eq!(replayed.rounds(), live.rounds());
    assert_eq!(replayed.window(), live.window());
    assert_eq!(replayed.totals(), live.totals());
    assert_eq!(live.totals().messages, stats.messages);
    assert_eq!(live.totals().bits, stats.total_bits);
}
