//! End-to-end telemetry reconciliation: a traced run of the Theorem 1
//! algorithm must produce a JSONL event stream whose aggregates agree
//! *exactly* with the run's own `RunStats`/`OracleCost` accounting — the
//! trace layer is an observer, never a second (drifting) bookkeeper.

use congest::{BandwidthPolicy, Config};
use congest_diameter::prelude::*;
use graphs::{generators, metrics};
use quantum_diameter::exact;

/// Traced exact run on the 8×8 torus: write the trace through a
/// [`trace::FileSink`], read it back, and reconcile every aggregate
/// against [`exact::DiameterRun`].
#[test]
fn traced_exact_run_reconciles_with_its_own_accounting() {
    let g = generators::torus(8, 8);
    let cfg = Config::for_graph(&g);
    let dir = std::env::temp_dir().join("qdiam-trace-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("exact-torus.jsonl");

    let sink = trace::FileSink::shared(&path).unwrap();
    let run = {
        let _guard = trace::install(sink.clone());
        exact::diameter(&g, ExactParams::new(5).with_failure_prob(1e-3), cfg).unwrap()
    };
    trace::TraceSink::flush(&mut *sink.borrow_mut()).unwrap();
    assert!(sink.borrow_mut().take_error().is_none());

    let events = trace::read_jsonl(&path).unwrap();
    assert_eq!(events.len() as u64, sink.borrow().lines_written());
    let summary = trace::Summary::from_events(&events);

    // The answer itself, both in the run and as a trace value.
    assert_eq!(run.value, metrics::diameter(&g).unwrap());
    assert!(summary
        .values()
        .iter()
        .any(|(label, v)| label == "diameter" && *v == u64::from(run.value)));

    // Every phase span — initialization, the schedule-measuring probes, the
    // sampled verification runs, and the derived Theorem 7 quantum phase —
    // must add up to the ledgers plus the charged quantum rounds.
    assert_eq!(
        summary.total_phase_rounds(),
        run.init_ledger.total_rounds() + run.probe_ledger.total_rounds() + run.quantum_rounds
    );

    // Each charged oracle application appears once, and the per-application
    // schedules re-add to the Theorem 7 conversion.
    assert_eq!(summary.oracle_setup_ops, run.oracle.setup_ops());
    assert_eq!(summary.oracle_evaluation_ops, run.oracle.evaluation_ops());
    assert_eq!(
        summary.oracle_setup_rounds + summary.oracle_evaluation_rounds,
        run.quantum_rounds
    );
    assert_eq!(
        summary.oracle_setup_rounds,
        run.oracle.setup_ops() * run.oracle_schedule.setup_rounds
    );

    // Per-event traffic reconciles with the *non-derived* spans: every
    // `Message`/`Round` tick belongs to exactly one physically simulated
    // phase, and derived spans (uncompute, scheduled quantum rounds)
    // contribute none.
    assert_eq!(
        summary.messages_delivered,
        summary.simulated_phase_messages()
    );
    assert_eq!(summary.round_ticks, summary.simulated_phase_rounds());
    assert!(summary.messages_delivered > 0);

    // Round ticks carry *actual* deliveries (messages drained at round
    // start), so their sum can never exceed the sent-message count, and
    // falls short exactly by the messages still in flight when a
    // fixed-duration phase (the Figure 2 waves) ends.
    assert!(summary.round_deliveries > 0);
    assert!(summary.round_deliveries <= summary.messages_delivered);

    // Per-edge rollups partition the global message count.
    let edge_messages: u64 = summary.edges().values().map(|e| e.messages).sum();
    assert_eq!(edge_messages, summary.messages_delivered);
    let edge_bits: u64 = summary.edges().values().map(|e| e.bits).sum();
    assert_eq!(edge_bits, summary.bits_delivered);

    // The analytic memory estimate is reported for both scopes.
    let highwater = summary.qubit_highwater();
    assert!(highwater
        .iter()
        .any(|(s, q)| s == "per-node" && *q == run.memory.per_node_qubits as u64));
    assert!(highwater
        .iter()
        .any(|(s, q)| s == "leader" && *q == run.memory.leader_qubits as u64));

    // The Figure 2 wave invariant (Lemmas 2–4) is an observable metric:
    // waves were seen and never carried two distinct surviving messages.
    assert!(summary.wave_observations > 0);
    assert_eq!(summary.wave_max_distinct, 1);
}

/// With `BandwidthPolicy::Track`, a full O(√(nD)) exact run must stay
/// inside the CONGEST bandwidth budget: zero violations in the network
/// stats, the ledgers, and the trace.
#[test]
fn full_exact_run_has_zero_bandwidth_violations_under_track_policy() {
    let g = generators::torus(6, 6);
    let cfg = Config::for_graph(&g).with_policy(BandwidthPolicy::Track);

    let recorder = trace::Recorder::shared();
    let run = {
        let _guard = trace::install(recorder.clone());
        exact::diameter(&g, ExactParams::new(2).with_failure_prob(1e-3), cfg).unwrap()
    };
    assert_eq!(run.value, metrics::diameter(&g).unwrap());

    for (label, stats, _) in run.init_ledger.phases().chain(run.probe_ledger.phases()) {
        assert_eq!(
            stats.bandwidth_violations, 0,
            "violations in phase '{label}'"
        );
    }
    let events = recorder.borrow_mut().take();
    let summary = trace::Summary::from_events(&events);
    assert_eq!(summary.violations, 0);
    assert!(!events
        .iter()
        .any(|e| matches!(e, trace::TraceEvent::Violation { .. })));
}

/// The approximation pipeline reconciles the same way (and emits no
/// duplicate spans for the HPRW phases it re-ledgers under a prefix).
#[test]
fn traced_approx_run_reconciles_with_its_own_accounting() {
    let g = generators::torus(6, 6);
    let cfg = Config::for_graph(&g);

    let recorder = trace::Recorder::shared();
    let run = {
        let _guard = trace::install(recorder.clone());
        quantum_diameter::approx::diameter(&g, ApproxParams::new(4).with_failure_prob(1e-3), cfg)
            .unwrap()
    };
    let events = recorder.borrow_mut().take();
    let summary = trace::Summary::from_events(&events);

    assert_eq!(
        summary.total_phase_rounds(),
        run.prep_ledger.total_rounds() + run.probe_ledger.total_rounds() + run.quantum_rounds
    );
    assert_eq!(
        summary.messages_delivered,
        summary.simulated_phase_messages()
    );
    assert_eq!(summary.round_ticks, summary.simulated_phase_rounds());
    assert!(summary.round_deliveries > 0);
    assert!(summary.round_deliveries <= summary.messages_delivered);
    assert_eq!(summary.oracle_setup_ops, run.oracle.setup_ops());
    assert_eq!(summary.oracle_evaluation_ops, run.oracle.evaluation_ops());
    assert!(summary
        .values()
        .iter()
        .any(|(label, v)| label == "diameter estimate" && *v == u64::from(run.estimate)));
}
