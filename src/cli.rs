//! Argument parsing and dispatch for the `qdiam` command-line tool.
//!
//! Kept separate from the binary so the parsing and report logic is unit
//! tested. No external argument-parsing dependency: the grammar is small.

use std::fmt::Write as _;

use classical::hprw::HprwParams;
use classical::recovery::SurvivingComponent;
use congest::{Config, FaultPlan, RecoveryPolicy, RecoveryStats, Scheduling};
use diameter_quantum::approx::{self, ApproxParams};
use diameter_quantum::exact::ExactParams;
use diameter_quantum::{exact, exact_simple, recovery};
use graphs::Graph;

/// Which algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Theorem 1: quantum exact diameter in `Õ(√(nD))` rounds.
    Exact,
    /// Section 3.1: the simpler quantum exact algorithm, `O(√n·D)` rounds.
    Simple,
    /// Theorem 4: quantum 3/2-approximation, `Õ(∛(nD) + D)` rounds.
    Approx,
    /// The classical `Θ(n)`-round exact baseline (PRT12/HW12).
    Classical,
    /// The classical HPRW 3/2-approximation, `Õ(√n + D)` rounds.
    ClassicalApprox,
    /// The trivial 2-approximation (`ecc(leader)`), `O(D)` rounds.
    TwoApprox,
    /// The classical `Θ(n)`-round girth computation (PRT12).
    Girth,
}

impl Algorithm {
    /// The stable lowercase name: the same token `Algorithm::parse`
    /// accepts and artifact filenames use.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Exact => "exact",
            Algorithm::Simple => "simple",
            Algorithm::Approx => "approx",
            Algorithm::Classical => "classical",
            Algorithm::ClassicalApprox => "classical-approx",
            Algorithm::TwoApprox => "two-approx",
            Algorithm::Girth => "girth",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "exact" => Ok(Algorithm::Exact),
            "simple" => Ok(Algorithm::Simple),
            "approx" => Ok(Algorithm::Approx),
            "classical" => Ok(Algorithm::Classical),
            "classical-approx" => Ok(Algorithm::ClassicalApprox),
            "two-approx" => Ok(Algorithm::TwoApprox),
            "girth" => Ok(Algorithm::Girth),
            other => Err(format!("unknown algorithm '{other}'")),
        }
    }
}

/// Which graph family to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// `P_n` — diameter `n − 1`.
    Path,
    /// `C_n` — diameter `⌊n/2⌋`.
    Cycle,
    /// Near-square grid with `n` nodes.
    Grid,
    /// Uniform random tree.
    Tree,
    /// Sparse random graph (average degree from `--degree`).
    Sparse,
    /// Erdős–Rényi `G(n, p)` (probability from `--p`), connected.
    Er,
    /// Barbell: two cliques and a bridge.
    Barbell,
    /// Lollipop: clique with a pendant path.
    Lollipop,
    /// Hypercube with at least `n` nodes.
    Hypercube,
    /// Load an edge-list file given with `--file` (ignores `--n`).
    File,
}

impl Family {
    /// The stable lowercase name: the same token [`Family::parse`] accepts
    /// and artifacts like `crossover.json` use.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Grid => "grid",
            Family::Tree => "tree",
            Family::Sparse => "sparse",
            Family::Er => "er",
            Family::Barbell => "barbell",
            Family::Lollipop => "lollipop",
            Family::Hypercube => "hypercube",
            Family::File => "file",
        }
    }

    /// Parses a family name (the same tokens `--family` accepts).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown token.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "path" => Ok(Family::Path),
            "cycle" => Ok(Family::Cycle),
            "grid" => Ok(Family::Grid),
            "tree" => Ok(Family::Tree),
            "sparse" => Ok(Family::Sparse),
            "er" => Ok(Family::Er),
            "barbell" => Ok(Family::Barbell),
            "lollipop" => Ok(Family::Lollipop),
            "hypercube" => Ok(Family::Hypercube),
            "file" => Ok(Family::File),
            other => Err(format!("unknown family '{other}'")),
        }
    }
}

/// Parsed command-line options.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Graph family.
    pub family: Family,
    /// Number of nodes (approximate for grid/hypercube).
    pub n: usize,
    /// RNG seed (graph construction and quantum measurement).
    pub seed: u64,
    /// Average degree for `--family sparse`.
    pub degree: f64,
    /// Edge probability for `--family er`.
    pub p: f64,
    /// Cluster-size override for the approximation algorithms.
    pub s: Option<usize>,
    /// Quantum failure probability `δ`.
    pub delta: f64,
    /// Edge-list file for `--family file`.
    pub file: Option<String>,
    /// Print per-phase ledgers.
    pub verbose: bool,
    /// Write a JSONL event trace of the run to this path.
    pub trace: Option<String>,
    /// Worker shards for the simulator's execute phase (1 = sequential).
    pub shards: usize,
    /// Round-scheduling mode (dense reference vs active-set skipping).
    pub scheduling: Scheduling,
    /// Fault-injection spec (see [`congest::FaultPlan::parse`]); validated
    /// at parse time, kept as the raw text so reports can echo it.
    pub faults: Option<String>,
    /// Recovery-policy spec (see [`congest::RecoveryPolicy::parse`]);
    /// `Some("")` is the bare `--recover` flag (the standard policy).
    pub recover: Option<String>,
    /// Export the run's metrics registry to this path (`.json` → JSON,
    /// anything else → Prometheus text).
    pub metrics: Option<String>,
    /// Enable the critical-path profiler (`qdiam report` forces this on).
    pub critical_path: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            algorithm: Algorithm::Exact,
            family: Family::Sparse,
            n: 128,
            seed: 0,
            degree: 6.0,
            p: 0.1,
            s: None,
            delta: 0.01,
            file: None,
            verbose: false,
            trace: None,
            shards: 1,
            scheduling: Scheduling::default(),
            faults: None,
            recover: None,
            metrics: None,
            critical_path: false,
        }
    }
}

/// Usage text printed on `--help` or a parse error.
pub const USAGE: &str = "\
qdiam — quantum CONGEST diameter computation (Le Gall & Magniez, PODC 2018)

USAGE: qdiam <ALGORITHM> [OPTIONS]
       qdiam trace-summary <TRACE.jsonl>
       qdiam crossover [CROSSOVER OPTIONS]
       qdiam timeline <ALGORITHM> [OPTIONS]
       qdiam report <ALGORITHM> [OPTIONS] [--out DIR]

ALGORITHMS:
  exact             quantum exact diameter, Õ(√(nD)) rounds   (Theorem 1)
  simple            quantum exact, O(√n·D) rounds             (Section 3.1)
  approx            quantum 3/2-approximation, Õ(∛(nD)+D)     (Theorem 4)
  classical         classical exact baseline, Θ(n) rounds     (PRT12/HW12)
  classical-approx  classical 3/2-approximation, Õ(√n+D)      (HPRW14)
  two-approx        eccentricity of a leader, O(D) rounds
  girth             classical girth computation, Θ(n) rounds  (PRT12)

COMMANDS:
  trace-summary     aggregate a --trace JSONL file into per-phase/per-edge
                    rollups and print them
  crossover         sweep classical BFS-APSP vs quantum exact/approx across
                    graph families and sizes under the constant-honest cost
                    model; writes crossover.json + CROSSOVER.md into the
                    results directory.  Options: --families a,b (default
                    sparse,tree)  --ns 16,24,... (default 16,24,32,48,64)
                    --seed S  --qubit-factor F (classical bits one qubit
                    costs; default 100)  --header-bits B (per-message
                    framing; default 64)  --no-approx  --out DIR
                    --metrics PATH
  timeline          run an algorithm with the flight recorder installed and
                    print the per-round timeline (lifetime totals, window
                    percentiles, a messages-per-round sparkline, and the
                    hottest rounds). Takes the same options as a run
  report            run an algorithm with the flight recorder, metrics
                    registry, and critical-path profiler all enabled, and
                    write a markdown run report (run summary, critical
                    path, timeline, cost-model totals, recovery ledger)
                    into the results directory (--out DIR overrides;
                    default QD_RESULTS_DIR or results)

OPTIONS:
  --family F   path|cycle|grid|tree|sparse|er|barbell|lollipop|hypercube|file
               (default: sparse)
  --file PATH  edge-list file ('n m' header + 'u v' lines) for --family file
  --n N        number of nodes (default: 128)
  --seed S     RNG seed (default: 0)
  --degree D   average degree for --family sparse (default: 6)
  --p P        edge probability for --family er (default: 0.1)
  --s S        cluster-size override for the approximations
  --delta D    quantum failure probability (default: 0.01)
  --trace PATH write a JSONL event trace of the run to PATH
  --metrics P  export the run's metrics registry to P after the run
               (.json extension -> JSON, anything else -> Prometheus text)
  --shards K   run node programs on K worker threads per round (default: 1);
               results are byte-identical to the sequential scheduler
  --sched M    round scheduling: active-set (default; skip halted nodes and
               fast-forward quiescent stretches) or dense (execute every
               node every round). Byte-identical results either way
  --faults S   inject deterministic message/node faults; S is a comma-
               separated list of: seed=<u64>  drop=<p>  corrupt=<p>
               delay=<p>:<max>  link=<u>-<v>@<start>..<end>
               crash=<node>@<round>. Algorithms either still answer
               correctly or fail with a typed fault-detection error.
  --recover [S] enable self-healing for detected faults; S is a comma-
               separated list of: retry=<n>  retransmit=<rounds>
               checkpoint=<sources>  partial[=true|false]. A bare
               --recover (or S in {1, on, true, standard}) selects the
               standard policy retry=2,retransmit=2,checkpoint=16,partial;
               'off' disables recovery
  --critical-path
               enable the critical-path profiler: track the longest chain
               of causally ordered messages and add it to the report
               (qdiam report forces this on)
  --verbose    print per-phase round ledgers
  --help       this message

RECOVERY:
  With a policy active, detected faults are healed instead of fatal:
  failed protocols rerun under a deterministically reseeded fault plan
  (retry=N), tree protocols repeat their critical sends with idempotent
  receivers (retransmit=R), the eccentricity-wave schedule restarts from
  the last completed checkpoint segment instead of round 0
  (checkpoint=S sources), and crash-stops re-root onto the largest
  surviving connected component (partial) — the reported diameter then
  refers to that component. Retry and partial-network semantics wrap
  exact, approx, and classical; retransmission and checkpointing apply
  wherever the substrate protocols run. Every healed run reports its
  recovery cost (retries, restarts, retransmissions, re-roots, wasted
  rounds/messages/bits). See RECOVERY.md for the full semantics.

ENVIRONMENT:
  QD_METRICS      metrics export path applied when --metrics is absent
  QD_FAULTS       fault spec applied when --faults is absent (same grammar);
                  also honored by the experiment binaries in crates/bench
  QD_RECOVER      recovery policy applied when --recover is absent (same
                  grammar); also honored by the experiment binaries in
                  crates/bench
  QD_SHARDS       worker shards for the experiment binaries (default 1)
  QD_SCHED        scheduling mode for the experiment binaries
                  (dense | active-set; default active-set)
  QD_SCALE        sweep-size multiplier for the experiment binaries
  QD_RESULTS_DIR  where experiment binaries write JSON artifacts
                  (default: results)
  QD_TEST_SHARDS  shard counts exercised by the property-test suite
";

/// A fully parsed invocation: an algorithm run, a trace-file query, or a
/// crossover sweep.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run an algorithm with the given options.
    Run(Options),
    /// Summarize a previously written `--trace` JSONL file.
    TraceSummary(String),
    /// Sweep classical vs quantum costs and emit the crossover report.
    Crossover(CrossoverOptions),
    /// Run an algorithm under the flight recorder and print its timeline.
    Timeline(Options),
    /// Run an algorithm under full observability and write a markdown run
    /// report into the results directory.
    Report(ReportOptions),
}

/// Parsed options of the `report` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportOptions {
    /// The run to perform (critical-path profiling is forced on).
    pub run: Options,
    /// Output directory override (default: `QD_RESULTS_DIR` or `results`).
    pub out: Option<String>,
}

/// Parsed options of the `crossover` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossoverOptions {
    /// The sweep configuration handed to [`crate::crossover::run`].
    pub params: crate::crossover::CrossoverParams,
    /// Output directory override (default: `QD_RESULTS_DIR` or `results`).
    pub out: Option<String>,
    /// Export the sweep's aggregate metrics registry to this path.
    pub metrics: Option<String>,
}

/// Parses a full command line (without the program name) into a [`Command`].
///
/// # Errors
///
/// As for [`parse`].
pub fn parse_command(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        Some("trace-summary") => match args {
            [_, path] => Ok(Command::TraceSummary(path.clone())),
            [_] => Err("trace-summary requires a path".into()),
            _ => Err("trace-summary takes exactly one path".into()),
        },
        Some("crossover") => parse_crossover(&args[1..]).map(Command::Crossover),
        Some("timeline") => parse(&args[1..]).map(Command::Timeline),
        Some("report") => parse_report(&args[1..]).map(Command::Report),
        _ => parse(args).map(Command::Run),
    }
}

/// Parses `report` arguments: `--out DIR` is peeled off, everything else is
/// an ordinary run invocation.
fn parse_report(args: &[String]) -> Result<ReportOptions, String> {
    let mut out = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            out = Some(
                iter.next()
                    .ok_or_else(|| "--out requires a value".to_string())?
                    .clone(),
            );
        } else {
            rest.push(arg.clone());
        }
    }
    Ok(ReportOptions {
        run: parse(&rest)?,
        out,
    })
}

fn parse_crossover(args: &[String]) -> Result<CrossoverOptions, String> {
    let mut opts = CrossoverOptions {
        params: crate::crossover::CrossoverParams::default(),
        out: None,
        metrics: None,
    };
    let mut iter = args.iter().peekable();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next().ok_or(format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--families" => {
                opts.params.families = value("--families")?
                    .split(',')
                    .map(|s| Family::parse(s.trim()))
                    .collect::<Result<_, _>>()?;
            }
            "--ns" => {
                opts.params.ns = value("--ns")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("--ns: {e}")))
                    .collect::<Result<_, _>>()?;
                if opts.params.ns.iter().any(|&n| n < 2) {
                    return Err("--ns entries must be >= 2".into());
                }
            }
            "--seed" => {
                opts.params.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--qubit-factor" => {
                let f: f64 = value("--qubit-factor")?
                    .parse()
                    .map_err(|e| format!("--qubit-factor: {e}"))?;
                if !(f >= 0.0 && f.is_finite()) {
                    return Err("--qubit-factor must be finite and >= 0".into());
                }
                opts.params.cost.qubit_factor = f;
            }
            "--header-bits" => {
                opts.params.cost.header_bits = value("--header-bits")?
                    .parse()
                    .map_err(|e| format!("--header-bits: {e}"))?
            }
            "--no-approx" => opts.params.include_approx = false,
            "--out" => opts.out = Some(value("--out")?.clone()),
            "--metrics" => opts.metrics = Some(value("--metrics")?.clone()),
            other => return Err(format!("crossover: unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// Exports `registry` to `path`, creating parent directories first so
/// `--metrics results/run.prom` works before `results/` exists.
fn export_metrics(registry: &metrics::Registry, path: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("--metrics '{path}': {e}"))?;
        }
    }
    metrics::export::write(registry, path).map_err(|e| format!("--metrics '{path}': {e}"))
}

/// Runs the crossover sweep, writes `crossover.json` + `CROSSOVER.md`, and
/// returns a console summary of the verdicts.
///
/// # Errors
///
/// Propagates sweep and filesystem errors as strings.
pub fn crossover(opts: &CrossoverOptions) -> Result<String, String> {
    let report = match &opts.metrics {
        Some(mpath) => {
            let registry = std::rc::Rc::new(std::cell::RefCell::new(metrics::Registry::with_cost(
                opts.params.cost,
            )));
            let report = {
                let _guard = metrics::install(registry.clone());
                crate::crossover::run(&opts.params)?
            };
            export_metrics(&registry.borrow(), mpath)?;
            report
        }
        None => crate::crossover::run(&opts.params)?,
    };
    let dir = opts
        .out
        .clone()
        .unwrap_or_else(|| std::env::var("QD_RESULTS_DIR").unwrap_or_else(|_| "results".into()));
    let (json_path, md_path) = report
        .write_artifacts(&dir)
        .map_err(|e| format!("writing crossover artifacts to '{dir}': {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "crossover sweep: {} points across {} families, ns {:?}",
        report.points.len(),
        report.params.families.len(),
        report.params.ns
    );
    for c in report.crossings.iter().filter(|c| c.metric == "cost_units") {
        let verdict = match (c.kind, c.n) {
            (crate::crossover::CrossKind::Empirical, Some(n)) => {
                format!("crossover at n = {n:.0}")
            }
            (crate::crossover::CrossKind::Projected, Some(n)) => {
                format!("projected crossover at n ≈ {n:.3e}")
            }
            _ => match c.ratio_at_max_n {
                Some(r) => format!("no crossover (factor {r:.2}x)"),
                None => "no crossover (ratio undefined)".to_string(),
            },
        };
        let _ = writeln!(
            out,
            "  {} / {} [cost_units]: {verdict}",
            c.family, c.quantum_algo
        );
    }
    let _ = writeln!(out, "wrote {}", json_path.display());
    let _ = writeln!(out, "wrote {}", md_path.display());
    if let Some(mpath) = &opts.metrics {
        let _ = writeln!(out, "metrics -> {mpath}");
    }
    Ok(out)
}

/// Runs the selected algorithm with the flight recorder installed and
/// appends the rendered per-round timeline to the run report.
///
/// # Errors
///
/// As for [`run`].
pub fn timeline(opts: &Options) -> Result<String, String> {
    let recorder = trace::flight::FlightRecorder::shared();
    let report = {
        let _guard = trace::flight::install(recorder.clone());
        run(opts)
    }?;
    Ok(format!(
        "{report}--- timeline ---\n{}",
        recorder.borrow().render()
    ))
}

/// Runs the selected algorithm under full observability — flight recorder,
/// metrics registry, and the critical-path profiler (forced on) — and
/// writes a markdown run report into the results directory.
///
/// # Errors
///
/// Propagates run and filesystem errors as strings.
pub fn report(opts: &ReportOptions) -> Result<String, String> {
    let mut run_opts = opts.run.clone();
    run_opts.critical_path = true;
    // The report needs the registry contents itself, so it owns the
    // install and performs the `--metrics`/`QD_METRICS` export that
    // [`run`] would otherwise do.
    let mpath = run_opts
        .metrics
        .take()
        .or_else(|| std::env::var("QD_METRICS").ok());
    let recorder = trace::flight::FlightRecorder::shared();
    let registry = metrics::Registry::shared();
    let console = {
        let _flight = trace::flight::install(recorder.clone());
        let _meter = metrics::install(registry.clone());
        run_with_trace(&run_opts)
    }?;
    if let Some(mpath) = &mpath {
        export_metrics(&registry.borrow(), mpath)?;
    }
    let md = report_markdown(&run_opts, &console, &recorder.borrow(), &registry.borrow());
    let dir = opts
        .out
        .clone()
        .unwrap_or_else(|| std::env::var("QD_RESULTS_DIR").unwrap_or_else(|_| "results".into()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("report directory '{dir}': {e}"))?;
    let path = format!(
        "{dir}/REPORT_{}_{}_n{}.md",
        run_opts.algorithm.name(),
        run_opts.family.name(),
        run_opts.n
    );
    std::fs::write(&path, &md).map_err(|e| format!("writing '{path}': {e}"))?;
    let mut out = console;
    if let Some(mpath) = &mpath {
        let _ = writeln!(out, "metrics: -> {mpath}");
    }
    let _ = writeln!(out, "report -> {path}");
    Ok(out)
}

/// Renders the markdown run report combining the console summary, the
/// critical path, the flight-recorder timeline, the cost-model totals, and
/// the recovery ledger.
fn report_markdown(
    opts: &Options,
    console: &str,
    recorder: &trace::FlightRecorder,
    registry: &metrics::Registry,
) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# qdiam run report\n");
    let _ = writeln!(
        md,
        "- algorithm: `{}` | graph: `{}`, n = {} | seed: {}",
        opts.algorithm.name(),
        opts.family.name(),
        opts.n,
        opts.seed
    );
    let _ = writeln!(
        md,
        "- shards: {} | scheduling: {:?} | faults: {} | recovery: {}\n",
        opts.shards,
        opts.scheduling,
        opts.faults.as_deref().unwrap_or("none"),
        opts.recover.as_deref().unwrap_or("none")
    );
    let _ = writeln!(md, "## Run summary\n\n```\n{}```\n", console);
    let depth = registry
        .gauge(metrics::names::CRITICAL_PATH_DEPTH)
        .unwrap_or(0.0) as u64;
    let rounds = registry.counter(metrics::names::ROUNDS);
    let _ = writeln!(md, "## Critical path\n");
    let _ = writeln!(md, "- longest causal message chain: {depth} hops");
    let _ = writeln!(md, "- simulated rounds: {rounds}");
    if rounds > 0 {
        let _ = writeln!(
            md,
            "- chain / rounds: {:.3} — the chain lower-bounds the rounds any \
             schedule needs for this run's information flow; a Figure-2 wave \
             schedule bounds it above by the scheduled 2τ′-governed duration \
             (EXPERIMENTS.md § A11)",
            depth as f64 / rounds as f64
        );
    }
    let _ = writeln!(md, "\n## Timeline\n\n```\n{}```\n", recorder.render());
    let _ = writeln!(md, "## Cost totals\n");
    let _ = writeln!(md, "| metric | value |");
    let _ = writeln!(md, "|---|---|");
    for (name, value) in registry.counters() {
        let _ = writeln!(md, "| `{name}` | {value} |");
    }
    for (name, value) in registry.gauges() {
        let _ = writeln!(md, "| `{name}` | {value} |");
    }
    let _ = writeln!(md, "\n## Recovery\n");
    let actions = registry.counter(metrics::names::RECOVERY_ACTIONS);
    if actions == 0 {
        let _ = writeln!(md, "no recovery actions recorded");
    } else {
        let _ = writeln!(md, "- recovery actions: {actions}");
        let _ = writeln!(
            md,
            "- wasted rounds: {} | wasted wire bits: {}",
            registry.counter(metrics::names::RECOVERY_WASTED_ROUNDS),
            registry.counter(metrics::names::RECOVERY_WASTED_BITS)
        );
    }
    md
}

/// Parses arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for malformed input; the caller prints
/// it together with [`USAGE`].
pub fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut iter = args.iter().peekable();
    let first = iter.next().ok_or("missing algorithm")?;
    if first == "--help" || first == "-h" {
        return Err(String::new()); // caller prints usage
    }
    opts.algorithm = Algorithm::parse(first)?;
    while let Some(flag) = iter.next() {
        if flag == "--recover" {
            // The value is optional: a bare `--recover` selects the
            // standard policy, exactly like `QD_RECOVER=1`.
            let spec = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().cloned().unwrap_or_default(),
                _ => String::new(),
            };
            RecoveryPolicy::parse(&spec).map_err(|e| format!("--recover: {e}"))?;
            opts.recover = Some(spec);
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next().ok_or(format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--family" => opts.family = Family::parse(value("--family")?)?,
            "--n" => {
                opts.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?;
                if opts.n == 0 {
                    return Err("--n must be positive".into());
                }
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--degree" => {
                opts.degree = value("--degree")?
                    .parse()
                    .map_err(|e| format!("--degree: {e}"))?
            }
            "--p" => opts.p = value("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
            "--s" => opts.s = Some(value("--s")?.parse().map_err(|e| format!("--s: {e}"))?),
            "--delta" => {
                opts.delta = value("--delta")?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?;
                if !(opts.delta > 0.0 && opts.delta < 1.0) {
                    return Err("--delta must be in (0, 1)".into());
                }
            }
            "--file" => opts.file = Some(value("--file")?.clone()),
            "--trace" => opts.trace = Some(value("--trace")?.clone()),
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if opts.shards == 0 {
                    return Err("--shards must be positive".into());
                }
            }
            "--sched" => {
                opts.scheduling = match value("--sched")?.as_str() {
                    "dense" => Scheduling::Dense,
                    "active-set" | "active" | "sparse" => Scheduling::ActiveSet,
                    other => return Err(format!("--sched: unknown mode '{other}'")),
                }
            }
            "--faults" => {
                let spec = value("--faults")?;
                FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?;
                opts.faults = Some(spec.clone());
            }
            "--metrics" => opts.metrics = Some(value("--metrics")?.clone()),
            "--critical-path" => opts.critical_path = true,
            "--verbose" => opts.verbose = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// Builds the requested graph.
///
/// # Errors
///
/// Returns a message for parameter combinations the family rejects.
pub fn build_graph(opts: &Options) -> Result<Graph, String> {
    let n = opts.n;
    let g = match opts.family {
        Family::Path => graphs::generators::path(n),
        Family::Cycle => {
            if n < 3 {
                return Err("cycle needs --n >= 3".into());
            }
            graphs::generators::cycle(n)
        }
        Family::Grid => {
            let rows = (n as f64).sqrt().round().max(1.0) as usize;
            graphs::generators::grid(rows, n.div_ceil(rows))
        }
        Family::Tree => graphs::generators::random_tree(n, opts.seed),
        Family::Sparse => {
            if n < 2 {
                return Err("sparse needs --n >= 2".into());
            }
            graphs::generators::random_sparse(n, opts.degree, opts.seed)
        }
        Family::Er => graphs::generators::random_connected(n, opts.p, opts.seed),
        Family::Barbell => {
            if n < 5 {
                return Err("barbell needs --n >= 5".into());
            }
            graphs::generators::barbell(n / 3, n - 2 * (n / 3))
        }
        Family::Lollipop => {
            if n < 3 {
                return Err("lollipop needs --n >= 3".into());
            }
            graphs::generators::lollipop(n / 2, n - n / 2)
        }
        Family::Hypercube => {
            let dim = (n.max(2) as f64).log2().ceil() as usize;
            graphs::generators::hypercube(dim.clamp(1, 20))
        }
        Family::File => {
            let path = opts
                .file
                .as_ref()
                .ok_or("--family file requires --file PATH")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            graphs::io::parse_edge_list(&text).map_err(|e| format!("'{path}': {e}"))?
        }
    };
    Ok(g)
}

/// Runs the selected algorithm and renders a report.
///
/// With `opts.trace` set, a [`trace::FileSink`] is installed for the
/// duration of the run and every event the algorithms emit is written to
/// the given JSONL path (see `qdiam trace-summary`). With `opts.metrics`
/// set, a [`metrics::Registry`] is installed and exported to the given path
/// after the run (`.json` → JSON, anything else → Prometheus text).
///
/// # Errors
///
/// Propagates algorithm errors (and trace/metrics I/O errors) as strings.
pub fn run(opts: &Options) -> Result<String, String> {
    let mpath = opts
        .metrics
        .clone()
        .or_else(|| std::env::var("QD_METRICS").ok());
    let Some(mpath) = &mpath else {
        return run_with_trace(opts);
    };
    let registry = metrics::Registry::shared();
    let report = {
        let _guard = metrics::install(registry.clone());
        run_with_trace(opts)
    }?;
    export_metrics(&registry.borrow(), mpath)?;
    Ok(format!("{report}metrics: -> {mpath}\n"))
}

fn run_with_trace(opts: &Options) -> Result<String, String> {
    let Some(path) = &opts.trace else {
        return run_report(opts);
    };
    let sink = trace::FileSink::shared(path).map_err(|e| format!("--trace '{path}': {e}"))?;
    let report = {
        let _guard = trace::install(sink.clone());
        run_report(opts)
    }?;
    let mut file = sink.borrow_mut();
    trace::TraceSink::flush(&mut *file).map_err(|e| format!("--trace '{path}': {e}"))?;
    if let Some(e) = file.take_error() {
        return Err(format!("--trace '{path}': {e}"));
    }
    Ok(format!(
        "{report}trace: {} events -> {path}\n",
        file.lines_written()
    ))
}

/// Reads a `--trace` JSONL file back and renders the aggregated
/// [`trace::Summary`].
///
/// Robust to the two common ways a trace file ends up unusable: an empty
/// file (the run died before emitting anything) gets a clear error instead
/// of a blank report, and a truncated final line (the run was killed
/// mid-write) is dropped with a warning while the complete prefix is still
/// summarized. Corruption anywhere else keeps its line-numbered error.
///
/// # Errors
///
/// Propagates I/O and parse errors as strings.
pub fn trace_summary(path: &str) -> Result<String, String> {
    let (events, warning) = trace::read_jsonl_lossy(path).map_err(|e| format!("'{path}': {e}"))?;
    if events.is_empty() {
        return Err(match warning {
            Some(w) => format!("'{path}': {w}; no complete events before the truncation"),
            None => format!("'{path}': empty trace: the file contains no events"),
        });
    }
    let summary = trace::Summary::from_events(&events);
    let mut out = String::new();
    if let Some(w) = warning {
        let _ = writeln!(out, "warning: {w}");
    }
    let _ = write!(out, "{summary}");
    Ok(out)
}

/// Resolves the fault spec with `--faults` taking precedence over the
/// `QD_FAULTS` environment variable. Factored out of [`run`] so precedence
/// is testable without mutating the test process's environment.
fn resolve_faults(
    flag: Option<&str>,
    env: Option<&str>,
) -> Result<Option<(String, FaultPlan)>, String> {
    let Some(spec) = flag.or(env) else {
        return Ok(None);
    };
    let plan = FaultPlan::parse(spec).map_err(|e| format!("fault spec '{spec}': {e}"))?;
    Ok(Some((spec.to_string(), plan)))
}

/// Resolves the recovery policy with `--recover` taking precedence over
/// the `QD_RECOVER` environment variable. A spec that parses to the
/// passive policy (`off`) resolves to `None`, so `--recover off` and
/// `QD_RECOVER=0` really do disable recovery.
fn resolve_recovery(
    flag: Option<&str>,
    env: Option<&str>,
) -> Result<Option<RecoveryPolicy>, String> {
    let Some(spec) = flag.or(env) else {
        return Ok(None);
    };
    let policy = RecoveryPolicy::parse(spec).map_err(|e| format!("recovery spec '{spec}': {e}"))?;
    Ok(Some(policy).filter(|p| !p.is_passive()))
}

/// Appends the self-healing lines of a recovered run's report: the
/// surviving component (for partial-network answers) and what the
/// recovery cost.
fn recovery_report(
    out: &mut String,
    stats: &RecoveryStats,
    surviving: Option<&SurvivingComponent>,
) {
    if let Some(s) = surviving {
        let _ = writeln!(
            out,
            "surviving component: {} nodes ({} crashed/unreachable excluded) — \
             the answer refers to this component",
            s.nodes.len(),
            s.excluded
        );
    }
    let _ = writeln!(out, "recovery cost: {stats}");
}

/// One `scheduling:` report line: how many of the run's `n · rounds`
/// scheduling opportunities actually executed a node program. Depends on
/// the `--sched` mode (dense runs everybody every round, so it reports
/// 100%), never on `--shards` — it is telemetry about the scheduler, not a
/// protocol observable.
fn scheduling_line(out: &mut String, scheduled: u64, node_rounds: u64) {
    let fraction = if node_rounds == 0 {
        1.0
    } else {
        scheduled as f64 / node_rounds as f64
    };
    let _ = writeln!(
        out,
        "scheduling: {scheduled} of {node_rounds} node-rounds executed ({:.1}% active)",
        fraction * 100.0
    );
}

fn run_report(opts: &Options) -> Result<String, String> {
    let g = build_graph(opts)?;
    let mut cfg = Config::for_graph(&g)
        .with_shards(opts.shards)
        .with_scheduling(opts.scheduling)
        .with_critical_path(opts.critical_path);
    let env_faults = std::env::var("QD_FAULTS").ok();
    let faults = resolve_faults(opts.faults.as_deref(), env_faults.as_deref())?;
    let env_recover = std::env::var("QD_RECOVER").ok();
    let policy = resolve_recovery(opts.recover.as_deref(), env_recover.as_deref())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: {:?} family, {} nodes, {} edges",
        opts.family,
        g.len(),
        g.num_edges()
    );
    let faulty = faults.is_some();
    if let Some((spec, plan)) = faults {
        let _ = writeln!(out, "faults: {spec}");
        cfg = cfg.with_faults(plan);
    }
    if let Some(policy) = policy {
        let _ = writeln!(out, "recovery: {policy}");
        cfg = cfg.with_recovery(policy);
    }
    // Under an active fault plan or the critical-path profiler, make sure
    // a metrics registry observes the run so the report can state how many
    // faults were injected (`qd_faults_total`) and the longest causal
    // chain (`qd_critical_path_depth` — drivers run several networks, and
    // the max-tracking gauge is the cross-phase channel for the depth);
    // reuse the `--metrics` registry when one is already installed so the
    // export keeps seeing everything.
    let aux_registry = (faulty || opts.critical_path)
        .then(|| metrics::current().unwrap_or_else(metrics::Registry::shared));
    let _aux_guard = match &aux_registry {
        Some(r) if metrics::current().is_none() => Some(metrics::install(r.clone())),
        _ => None,
    };
    let recovering = policy.is_some();
    match opts.algorithm {
        Algorithm::Exact | Algorithm::Simple => {
            let params = ExactParams::new(opts.seed).with_failure_prob(opts.delta);
            let run = if opts.algorithm == Algorithm::Exact {
                if recovering {
                    let healed =
                        recovery::exact_recovering(&g, params, cfg).map_err(|e| e.to_string())?;
                    recovery_report(&mut out, &healed.recovery, healed.surviving.as_ref());
                    Ok(healed.run)
                } else {
                    exact::diameter(&g, params, cfg)
                }
            } else {
                exact_simple::diameter(&g, params, cfg)
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "diameter: {}", run.value);
            let _ = writeln!(
                out,
                "rounds: {} (init {} + quantum {})",
                run.rounds(),
                run.init_ledger.total_rounds(),
                run.quantum_rounds
            );
            let _ = writeln!(
                out,
                "oracle calls: {} | memory: {} qubits/node, {} at leader",
                run.oracle.total_ops(),
                run.memory.per_node_qubits,
                run.memory.leader_qubits
            );
            scheduling_line(
                &mut out,
                run.init_ledger.total_scheduled_nodes(),
                run.init_ledger.total_node_rounds(),
            );
            if opts.verbose {
                let _ = writeln!(out, "--- initialization ledger ---\n{}", run.init_ledger);
                if !run.probe_ledger.is_empty() {
                    let _ = writeln!(
                        out,
                        "--- probe/verification ledger ---\n{}",
                        run.probe_ledger
                    );
                }
            }
        }
        Algorithm::Approx => {
            let mut params = ApproxParams::new(opts.seed).with_failure_prob(opts.delta);
            if let Some(s) = opts.s {
                params = params.with_s(s);
            }
            let run = if recovering {
                let healed =
                    recovery::approx_recovering(&g, params, cfg).map_err(|e| e.to_string())?;
                recovery_report(&mut out, &healed.recovery, healed.surviving.as_ref());
                healed.run
            } else {
                approx::diameter(&g, params, cfg).map_err(|e| e.to_string())?
            };
            let _ = writeln!(out, "estimate D̄: {} (⌊2D/3⌋ ≤ D̄ ≤ D)", run.estimate);
            let _ = writeln!(
                out,
                "rounds: {} (prep {} + quantum {}) | s = {}",
                run.rounds(),
                run.prep_ledger.total_rounds(),
                run.quantum_rounds,
                run.s
            );
            scheduling_line(
                &mut out,
                run.prep_ledger.total_scheduled_nodes(),
                run.prep_ledger.total_node_rounds(),
            );
            if opts.verbose {
                let _ = writeln!(out, "--- preparation ledger ---\n{}", run.prep_ledger);
                if !run.probe_ledger.is_empty() {
                    let _ = writeln!(
                        out,
                        "--- probe/verification ledger ---\n{}",
                        run.probe_ledger
                    );
                }
            }
        }
        Algorithm::Classical => {
            let run = if recovering {
                let healed = classical::recovery::exact_diameter_recovering(&g, cfg)
                    .map_err(|e| e.to_string())?;
                recovery_report(&mut out, &healed.recovery, healed.surviving.as_ref());
                healed.outcome
            } else {
                classical::apsp::exact_diameter(&g, cfg).map_err(|e| e.to_string())?
            };
            let _ = writeln!(out, "diameter: {} | radius: {}", run.diameter, run.radius);
            let _ = writeln!(out, "rounds: {}", run.rounds());
            scheduling_line(
                &mut out,
                run.ledger.total_scheduled_nodes(),
                run.ledger.total_node_rounds(),
            );
            if opts.verbose {
                let _ = writeln!(out, "--- ledger ---\n{}", run.ledger);
            }
        }
        Algorithm::ClassicalApprox => {
            let params = match opts.s {
                Some(s) => HprwParams::with_s(s, opts.seed),
                None => HprwParams::classical(g.len(), opts.seed),
            };
            let run =
                classical::hprw::approx_diameter(&g, params, cfg).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "estimate D̄: {} (⌊2D/3⌋ ≤ D̄ ≤ D)", run.estimate);
            let _ = writeln!(out, "rounds: {} | |R| = {}", run.rounds(), run.r_size);
            scheduling_line(
                &mut out,
                run.ledger.total_scheduled_nodes(),
                run.ledger.total_node_rounds(),
            );
            if opts.verbose {
                let _ = writeln!(out, "--- ledger ---\n{}", run.ledger);
            }
        }
        Algorithm::TwoApprox => {
            let run = classical::ecc::two_approx(&g, cfg).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "estimate: {} (E ≤ D ≤ 2E) from ecc({})",
                run.estimate, run.node
            );
            let _ = writeln!(out, "rounds: {}", run.stats.rounds);
            scheduling_line(&mut out, run.stats.scheduled_nodes, run.stats.node_rounds);
        }
        Algorithm::Girth => {
            let run = classical::girth::compute(&g, cfg).map_err(|e| e.to_string())?;
            match run.girth {
                Some(girth) => {
                    let _ = writeln!(out, "girth: {girth}");
                }
                None => {
                    let _ = writeln!(out, "girth: none (the network is a tree)");
                }
            }
            let _ = writeln!(out, "rounds: {}", run.rounds());
            scheduling_line(
                &mut out,
                run.ledger.total_scheduled_nodes(),
                run.ledger.total_node_rounds(),
            );
            if opts.verbose {
                let _ = writeln!(out, "--- ledger ---\n{}", run.ledger);
            }
        }
    }
    if let Some(registry) = &aux_registry {
        if faulty {
            let _ = writeln!(
                out,
                "faults injected: {}",
                registry.borrow().counter(metrics::names::FAULTS)
            );
        }
        if opts.critical_path {
            let depth = registry
                .borrow()
                .gauge(metrics::names::CRITICAL_PATH_DEPTH)
                .unwrap_or(0.0) as u64;
            let _ = writeln!(
                out,
                "critical path: longest causal message chain {depth} hops"
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let o = parse(&args("exact")).unwrap();
        assert_eq!(o, Options::default());
        let o = parse(&args(
            "approx --family cycle --n 64 --seed 9 --s 12 --delta 0.001 --shards 4 --verbose",
        ))
        .unwrap();
        assert_eq!(o.algorithm, Algorithm::Approx);
        assert_eq!(o.family, Family::Cycle);
        assert_eq!(o.n, 64);
        assert_eq!(o.seed, 9);
        assert_eq!(o.s, Some(12));
        assert_eq!(o.delta, 0.001);
        assert_eq!(o.shards, 4);
        assert!(o.verbose);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&args("warp-drive")).is_err());
        assert!(parse(&args("exact --n")).is_err());
        assert!(parse(&args("exact --n zero")).is_err());
        assert!(parse(&args("exact --n 0")).is_err());
        assert!(parse(&args("exact --delta 2")).is_err());
        assert!(parse(&args("exact --what 3")).is_err());
        assert!(parse(&args("exact --shards 0")).is_err());
        assert!(parse(&args("exact --shards some")).is_err());
        assert!(parse(&[]).is_err());
    }

    /// `--shards` is a throughput knob, never a semantics knob: every
    /// algorithm's report is identical under sharded execution.
    #[test]
    fn sharded_reports_are_identical_to_sequential() {
        for algo in ["exact", "classical", "classical-approx"] {
            let base = format!("{algo} --family grid --n 25 --seed 3");
            let sequential = run(&parse(&args(&base)).unwrap()).unwrap();
            let sharded = run(&parse(&args(&format!("{base} --shards 3"))).unwrap()).unwrap();
            assert_eq!(sequential, sharded, "{algo} diverged under --shards");
        }
    }

    #[test]
    fn sched_flag_parses_and_rejects() {
        assert_eq!(
            parse(&args("exact")).unwrap().scheduling,
            Scheduling::ActiveSet
        );
        let o = parse(&args("exact --sched dense")).unwrap();
        assert_eq!(o.scheduling, Scheduling::Dense);
        for alias in ["active-set", "active", "sparse"] {
            let o = parse(&args(&format!("exact --sched {alias}"))).unwrap();
            assert_eq!(o.scheduling, Scheduling::ActiveSet, "{alias}");
        }
        assert!(parse(&args("exact --sched eager")).is_err());
        assert!(parse(&args("exact --sched")).is_err());
    }

    /// Like `--shards`, `--sched` is a cost knob, never a semantics knob:
    /// the dense reference renders the exact same report.
    #[test]
    fn dense_reports_are_identical_to_active_set() {
        // The `scheduling:` telemetry line is the one part of the report
        // that is *about* the cost knob (dense executes every node every
        // round, so it always reports 100% active): strip it, then demand
        // byte identity on everything else.
        let strip = |report: String| -> (String, usize) {
            let mut kept = String::new();
            let mut stripped = 0;
            for line in report.lines() {
                if line.starts_with("scheduling: ") {
                    stripped += 1;
                } else {
                    kept.push_str(line);
                    kept.push('\n');
                }
            }
            (kept, stripped)
        };
        for algo in ["classical", "girth", "classical-approx"] {
            let base = format!("{algo} --family grid --n 25 --seed 3");
            let (default, sparse_lines) = strip(run(&parse(&args(&base)).unwrap()).unwrap());
            let (dense, dense_lines) =
                strip(run(&parse(&args(&format!("{base} --sched dense"))).unwrap()).unwrap());
            assert_eq!(sparse_lines, 1, "{algo} report lost its scheduling line");
            assert_eq!(
                dense_lines, 1,
                "{algo} dense report lost its scheduling line"
            );
            assert_eq!(default, dense, "{algo} diverged under --sched dense");
        }
    }

    #[test]
    fn faults_flag_parses_and_rejects() {
        let o = parse(&args("classical --faults drop=0.1,seed=7")).unwrap();
        assert_eq!(o.faults.as_deref(), Some("drop=0.1,seed=7"));
        assert!(parse(&args("classical --faults drop=two")).is_err());
        assert!(parse(&args("classical --faults")).is_err());
    }

    #[test]
    fn faults_flag_takes_precedence_over_env() {
        let from_flag = resolve_faults(Some("drop=0.5"), Some("drop=0.1"))
            .unwrap()
            .unwrap();
        assert_eq!(from_flag.0, "drop=0.5");
        let from_env = resolve_faults(None, Some("crash=3@2")).unwrap().unwrap();
        assert_eq!(from_env.0, "crash=3@2");
        assert!(resolve_faults(None, None).unwrap().is_none());
        assert!(resolve_faults(None, Some("nonsense")).is_err());
    }

    #[test]
    fn recover_flag_parses_bare_and_with_spec() {
        // Bare flag: the standard policy, even with more flags after it.
        let o = parse(&args("classical --recover --verbose")).unwrap();
        assert_eq!(o.recover.as_deref(), Some(""));
        assert!(o.verbose);
        let o = parse(&args("classical --recover retry=3,partial --n 12")).unwrap();
        assert_eq!(o.recover.as_deref(), Some("retry=3,partial"));
        assert_eq!(o.n, 12);
        assert!(parse(&args("classical --recover retry=lots")).is_err());
        assert!(parse(&args("classical --recover bogus=1")).is_err());
    }

    #[test]
    fn recover_flag_takes_precedence_over_env() {
        let from_flag = resolve_recovery(Some("retry=5"), Some("retry=1"))
            .unwrap()
            .unwrap();
        assert_eq!(from_flag.retries(), 5);
        let from_env = resolve_recovery(None, Some("1")).unwrap().unwrap();
        assert_eq!(from_env, RecoveryPolicy::standard());
        assert!(resolve_recovery(None, None).unwrap().is_none());
        // A spec that parses to the passive policy disables recovery.
        assert!(resolve_recovery(Some("off"), Some("1")).unwrap().is_none());
        assert!(resolve_recovery(None, Some("0")).unwrap().is_none());
        assert!(resolve_recovery(None, Some("nonsense")).is_err());
    }

    /// A crash-stop that is fatal under the passive policy heals to the
    /// surviving component's diameter under `--recover`, for both the
    /// classical and the quantum exact drivers.
    #[test]
    fn recover_heals_a_crash_to_the_surviving_component() {
        for algo in ["classical", "exact"] {
            let fatal = format!("{algo} --family path --n 10 --faults crash=9@0,seed=7");
            let err = run(&parse(&args(&fatal)).unwrap()).unwrap_err();
            assert!(err.contains("fault detected at round"), "{algo}: {err}");
            let healed = run(&parse(&args(&format!("{fatal} --recover"))).unwrap()).unwrap();
            assert!(healed.contains("recovery: retry=2"), "{algo}: {healed}");
            assert!(
                healed.contains("surviving component: 9 nodes (1 crashed/unreachable excluded)"),
                "{algo}: {healed}"
            );
            assert!(healed.contains("diameter: 8"), "{algo}: {healed}");
            assert!(healed.contains("recovery cost:"), "{algo}: {healed}");
            assert!(healed.contains("faults injected:"), "{algo}: {healed}");
        }
    }

    /// `--recover off` (and `QD_RECOVER=0`) really is the passive policy:
    /// the crash stays fatal.
    #[test]
    fn recover_off_is_inert() {
        let o = parse(&args(
            "classical --family path --n 10 --faults crash=9@0 --recover off",
        ))
        .unwrap();
        let err = run(&o).unwrap_err();
        assert!(err.contains("fault detected at round"), "{err}");
    }

    /// A total drop plan cannot yield a silently wrong answer: the run
    /// fails with a typed fault-detection error naming a round.
    #[test]
    fn faulty_run_degrades_to_a_typed_error() {
        let o = parse(&args("classical --family path --n 8 --faults drop=1.0")).unwrap();
        let err = run(&o).unwrap_err();
        assert!(err.contains("fault detected at round"), "{err}");
        // A passive plan (seed only) changes nothing but the report header.
        let o = parse(&args("classical --family path --n 8 --faults seed=5")).unwrap();
        let report = run(&o).unwrap();
        assert!(report.contains("diameter: 7"), "{report}");
        assert!(report.contains("faults: seed=5"), "{report}");
    }

    #[test]
    fn build_graph_families() {
        for family in [
            "path", "cycle", "grid", "tree", "sparse", "er", "barbell", "lollipop",
        ] {
            let o = parse(&args(&format!("exact --family {family} --n 24"))).unwrap();
            let g = build_graph(&o).unwrap();
            assert!(graphs::traversal::is_connected(&g), "{family}");
            assert!(g.len() >= 20, "{family} built only {} nodes", g.len());
        }
        let o = parse(&args("exact --family hypercube --n 30")).unwrap();
        assert_eq!(build_graph(&o).unwrap().len(), 32);
    }

    #[test]
    fn file_family_loads_edge_lists() {
        let dir = std::env::temp_dir().join("qdiam-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.edges");
        std::fs::write(
            &path,
            graphs::io::to_edge_list(&graphs::generators::cycle(12)),
        )
        .unwrap();
        let o = parse(&args(&format!(
            "classical --family file --file {}",
            path.display()
        )))
        .unwrap();
        let report = run(&o).unwrap();
        assert!(report.contains("diameter: 6"), "{report}");
        // Missing --file is a clear error.
        let o = parse(&args("classical --family file")).unwrap();
        assert!(run(&o).unwrap_err().contains("--file"));
    }

    #[test]
    fn parse_command_dispatches() {
        assert_eq!(
            parse_command(&args("trace-summary /tmp/x.jsonl")).unwrap(),
            Command::TraceSummary("/tmp/x.jsonl".into())
        );
        assert!(parse_command(&args("trace-summary")).is_err());
        assert!(parse_command(&args("trace-summary a b")).is_err());
        let o = parse_command(&args("exact --trace out.jsonl")).unwrap();
        assert_eq!(
            o,
            Command::Run(Options {
                trace: Some("out.jsonl".into()),
                ..Options::default()
            })
        );
    }

    #[test]
    fn trace_flag_writes_a_summarizable_jsonl_file() {
        let dir = std::env::temp_dir().join("qdiam-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exact.jsonl");
        let o = parse(&args(&format!(
            "exact --family grid --n 16 --trace {}",
            path.display()
        )))
        .unwrap();
        let report = run(&o).unwrap();
        assert!(report.contains("trace:"), "{report}");
        let rendered = trace_summary(path.to_str().unwrap()).unwrap();
        assert!(rendered.contains("leader election"), "{rendered}");
        assert!(rendered.contains("oracle"), "{rendered}");
        // A second run without the flag must not touch the file.
        let events_before = trace::read_jsonl(&path).unwrap().len();
        run(&parse(&args("exact --family grid --n 16")).unwrap()).unwrap();
        assert_eq!(trace::read_jsonl(&path).unwrap().len(), events_before);
    }

    #[test]
    fn run_each_algorithm_end_to_end() {
        for algo in [
            "exact",
            "simple",
            "approx",
            "classical",
            "classical-approx",
            "two-approx",
            "girth",
        ] {
            let o = parse(&args(&format!("{algo} --family cycle --n 16 --verbose"))).unwrap();
            let report = run(&o).unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(
                report.contains("rounds"),
                "{algo} report missing rounds:\n{report}"
            );
        }
    }

    #[test]
    fn reports_are_consistent_with_each_other() {
        let exact = run(&parse(&args("classical --family grid --n 25")).unwrap()).unwrap();
        let quantum = run(&parse(&args("exact --family grid --n 25")).unwrap()).unwrap();
        // Both must state the same diameter (8 for a 5x5 grid).
        assert!(exact.contains("diameter: 8"), "{exact}");
        assert!(quantum.contains("diameter: 8"), "{quantum}");
    }

    #[test]
    fn trace_summary_rejects_empty_files_clearly() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("qd-cli-empty-{}.jsonl", std::process::id()));
        std::fs::write(&path, "").unwrap();
        let err = trace_summary(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("empty trace"), "{err}");
        // Blank lines only: still an empty trace, same clear error.
        std::fs::write(&path, "\n\n\n").unwrap();
        let err = trace_summary(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("empty trace"), "{err}");
        std::fs::remove_file(&path).unwrap();
        // Missing file: plain I/O error with the path.
        let err = trace_summary(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("qd-cli-empty"), "{err}");
    }

    #[test]
    fn trace_summary_recovers_truncated_traces_with_a_warning() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("qd-cli-trunc-{}.jsonl", std::process::id()));
        // A real trace, then chop the file mid-line as a crash would.
        let mut o = parse(&args("classical --family cycle --n 12")).unwrap();
        o.trace = Some(path.to_str().unwrap().to_string());
        run(&o).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let rendered = trace_summary(path.to_str().unwrap()).unwrap();
        assert!(rendered.starts_with("warning:"), "{rendered}");
        assert!(rendered.contains("trace truncated"), "{rendered}");
        assert!(rendered.contains("leader election"), "{rendered}");
        // A file that is *only* a truncated line errors rather than
        // printing a summary of nothing.
        std::fs::write(&path, "{\"type\":\"rou").unwrap();
        let err = trace_summary(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("no complete events"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parse_command_dispatches_crossover() {
        let cmd = parse_command(&args(
            "crossover --families path,tree --ns 8,12 --seed 5 --qubit-factor 10 \
             --header-bits 32 --no-approx --out /tmp/x --metrics /tmp/x/m.json",
        ))
        .unwrap();
        let Command::Crossover(o) = cmd else {
            panic!("expected crossover command");
        };
        assert_eq!(o.params.families, vec![Family::Path, Family::Tree]);
        assert_eq!(o.params.ns, vec![8, 12]);
        assert_eq!(o.params.seed, 5);
        assert_eq!(o.params.cost.qubit_factor, 10.0);
        assert_eq!(o.params.cost.header_bits, 32);
        assert!(!o.params.include_approx);
        assert_eq!(o.out.as_deref(), Some("/tmp/x"));
        assert_eq!(o.metrics.as_deref(), Some("/tmp/x/m.json"));
    }

    #[test]
    fn parse_crossover_rejects_garbage() {
        assert!(parse_command(&args("crossover --ns 1")).is_err());
        assert!(parse_command(&args("crossover --ns")).is_err());
        assert!(parse_command(&args("crossover --families warp")).is_err());
        assert!(parse_command(&args("crossover --qubit-factor -3")).is_err());
        assert!(parse_command(&args("crossover --what 1")).is_err());
    }

    #[test]
    fn parse_command_dispatches_timeline_and_report() {
        let cmd = parse_command(&args("timeline classical --family path --n 16")).unwrap();
        let Command::Timeline(o) = cmd else {
            panic!("expected timeline command");
        };
        assert_eq!(o.algorithm, Algorithm::Classical);
        assert_eq!(o.family, Family::Path);
        assert_eq!(o.n, 16);
        let cmd = parse_command(&args("report exact --family grid --n 25 --out /tmp/r")).unwrap();
        let Command::Report(o) = cmd else {
            panic!("expected report command");
        };
        assert_eq!(o.run.algorithm, Algorithm::Exact);
        assert_eq!(o.run.family, Family::Grid);
        assert_eq!(o.out.as_deref(), Some("/tmp/r"));
        assert!(parse_command(&args("timeline")).is_err());
        assert!(parse_command(&args("report warp-drive")).is_err());
    }

    /// `qdiam timeline` is `run` plus the flight recorder's rendering —
    /// the answer is unchanged and the per-round telemetry follows it.
    #[test]
    fn timeline_appends_the_flight_recorder_render() {
        let o = parse(&args("classical --family path --n 24")).unwrap();
        let out = timeline(&o).unwrap();
        assert!(out.contains("diameter: 23"), "{out}");
        assert!(out.contains("--- timeline ---"), "{out}");
        assert!(out.contains("flight recorder:"), "{out}");
        assert!(out.contains("hottest rounds"), "{out}");
    }

    /// `--critical-path` adds the profiler's chain-depth line to the run
    /// report without changing the answer.
    #[test]
    fn critical_path_flag_reports_chain_depth() {
        let o = parse(&args("classical --family path --n 16 --critical-path")).unwrap();
        let out = run(&o).unwrap();
        assert!(out.contains("diameter: 15"), "{out}");
        let line = out
            .lines()
            .find(|l| l.starts_with("critical path: "))
            .unwrap_or_else(|| panic!("missing critical-path line:\n{out}"));
        let depth: u64 = line
            .trim_end_matches(" hops")
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(depth > 0, "profiler saw no causal chain: {line}");
    }

    /// `qdiam report` writes the full markdown run report with every
    /// section the check.sh schema smoke greps for.
    #[test]
    fn report_writes_markdown_with_all_sections() {
        let dir = std::env::temp_dir().join(format!("qd-cli-report-{}", std::process::id()));
        let cmd = parse_command(&args(&format!(
            "report classical --family grid --n 25 --out {}",
            dir.display()
        )))
        .unwrap();
        let Command::Report(o) = cmd else {
            panic!("expected report command");
        };
        let console = report(&o).unwrap();
        assert!(console.contains("diameter: 8"), "{console}");
        assert!(console.contains("report -> "), "{console}");
        let path = dir.join("REPORT_classical_grid_n25.md");
        let md = std::fs::read_to_string(&path).unwrap();
        for section in [
            "# qdiam run report",
            "## Run summary",
            "## Critical path",
            "- longest causal message chain:",
            "## Timeline",
            "flight recorder:",
            "## Cost totals",
            "`qd_messages_total`",
            "`qd_rounds_total`",
            "## Recovery",
        ] {
            assert!(md.contains(section), "report missing {section:?}:\n{md}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_flag_exports_after_a_run() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("qd-cli-metrics-{}.json", std::process::id()));
        let mut o = parse(&args("classical --family cycle --n 12")).unwrap();
        o.metrics = Some(path.to_str().unwrap().to_string());
        let report = run(&o).unwrap();
        assert!(report.contains("metrics:"), "{report}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("qd_messages_total"), "{text}");
        assert!(text.contains("qd_rounds_total"), "{text}");
        std::fs::remove_file(&path).unwrap();
    }
}
