//! `congest-diameter` — a reproduction of Le Gall & Magniez,
//! *Sublinear-Time Quantum Computation of the Diameter in CONGEST
//! Networks* (PODC 2018).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`graphs`] — graph substrate: representation, reference algorithms,
//!   generators.
//! * [`congest`] — the round-synchronous CONGEST-model simulator with
//!   bandwidth accounting.
//! * [`quantum`] — amplitude amplification (Theorem 6), quantum maximum
//!   finding (Corollary 1), and a gate-level state-vector simulator.
//! * [`classical`] — the classical distributed baselines: BFS (Figure 1),
//!   pipelined APSP (`O(n)` exact diameter), the HPRW `3/2`-approximation.
//! * [`quantum_diameter`] — the paper's contribution: distributed quantum
//!   optimization (Theorem 7), the exact `O(√(nD))`-round algorithm
//!   (Theorem 1, Figure 2), and the `Õ(∛(nD) + D)`-round
//!   `3/2`-approximation (Theorem 4, Figure 3).
//! * [`commcc`] — the lower-bound machinery: disjointness reductions
//!   (Theorems 8–9, Figures 4, 5, 8) and the two-party simulation argument
//!   (Theorems 10–11, Figures 6–7).
//!
//! # Quickstart
//!
//! ```
//! use congest_diameter::prelude::*;
//!
//! let g = graphs::generators::random_connected(64, 0.1, 1);
//! let cfg = congest::Config::for_graph(&g);
//!
//! // Classical exact diameter: Θ(n) rounds.
//! let classical = classical::apsp::exact_diameter(&g, cfg)?;
//! // Quantum exact diameter (Theorem 1): Õ(√(nD)) rounds.
//! let quantum = quantum_diameter::exact::diameter(&g, ExactParams::new(7), cfg)?;
//!
//! assert_eq!(classical.diameter, quantum.value);
//! // The classical round count grows like n, the quantum one like √(nD);
//! // the crossover point depends on the (real, unhidden) constants — see
//! // the `separation` example and EXPERIMENTS.md for the measured slopes.
//! println!("classical {} vs quantum {} rounds", classical.rounds(), quantum.rounds());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Compiles and runs every fenced Rust block in README.md as a doctest, so
/// the quickstart can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

pub mod cli;
pub mod crossover;

pub use classical;
pub use commcc;
pub use congest;
/// The paper's quantum diameter algorithms (the `diameter-quantum` crate).
pub use diameter_quantum as quantum_diameter;
pub use graphs;
pub use quantum;

/// Convenient glob-import surface for examples and downstream experiments.
pub mod prelude {
    pub use classical::{self, AlgoError};
    pub use commcc::{self, reduction::Reduction};
    pub use congest::{self, Config, RunStats, Scheduling};
    pub use diameter_quantum as quantum_diameter;
    pub use diameter_quantum::approx::ApproxParams;
    pub use diameter_quantum::exact::ExactParams;
    pub use diameter_quantum::QdError;
    pub use graphs::{self, Graph, NodeId};
    pub use quantum::{self, SearchState};
}
