//! `qdiam` — command-line front end for the CONGEST diameter algorithms.
//!
//! ```text
//! qdiam exact --family sparse --n 256 --seed 7 --verbose
//! qdiam classical --family cycle --n 64
//! qdiam approx --family er --n 200 --p 0.05 --s 20
//! qdiam exact --family grid --n 64 --trace run.jsonl
//! qdiam trace-summary run.jsonl
//! qdiam crossover --families sparse,tree --ns 16,24,32,48,64 --out results
//! qdiam timeline classical --family path --n 256
//! qdiam report exact --family grid --n 64 --out results
//! ```

use congest_diameter::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse_command(&args) {
        Ok(cmd) => {
            let result = match cmd {
                cli::Command::Run(opts) => cli::run(&opts),
                cli::Command::TraceSummary(path) => cli::trace_summary(&path),
                cli::Command::Crossover(opts) => cli::crossover(&opts),
                cli::Command::Timeline(opts) => cli::timeline(&opts),
                cli::Command::Report(opts) => cli::report(&opts),
            };
            match result {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", cli::USAGE);
            } else {
                eprintln!("error: {msg}\n");
                eprint!("{}", cli::USAGE);
                std::process::exit(2);
            }
        }
    }
}
