//! The classical-vs-quantum crossover engine.
//!
//! The capstone question of this reproduction (see ROADMAP.md and Kerger
//! et al., "Mind the Õ"): for which `(n, D)` does Theorem 1's `Õ(√(nD))`
//! quantum diameter algorithm actually beat the classical `Θ(n)` BFS-APSP
//! baseline once *real* constants are charged? This module sweeps both
//! (plus the Theorem 4 approximation) across graph families and sizes,
//! prices every run with the constant-honest [`metrics::CostModel`] —
//! actual payload bits, per-message framing, measured per-oracle-application
//! qubit traffic — and reports:
//!
//! * per-`(n, D)` cost tables (rounds, wire bits, qubit sends, cost units),
//! * the first empirical crossover point per metric, or its demonstrated
//!   absence together with the measured constant factor,
//! * log-log slope fits extending the paper's Table 1 with measured
//!   exponents, and projected crossover points where the sweep is too
//!   small to show one, and
//! * the *break-even qubit factor*: the largest price per communicated
//!   qubit (in classical wire bits) under which the quantum run still wins.
//!
//! Artifacts: `crossover.json` (machine-readable, schema below) and an
//! auto-generated Markdown report `CROSSOVER.md`, both written by
//! [`CrossoverReport::write_artifacts`] — usually into `results/` via
//! `qdiam crossover` or the `crossover` bench bin.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use congest::Config;
use diameter_quantum::approx::{self, ApproxParams};
use diameter_quantum::exact::{self, ExactParams};
use metrics::CostModel;
use trace::Json;

use crate::cli::{build_graph, Family, Options};

/// Sweep configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossoverParams {
    /// Graph families to sweep.
    pub families: Vec<Family>,
    /// Node counts to sweep, ascending.
    pub ns: Vec<usize>,
    /// RNG seed (graph construction and quantum measurement).
    pub seed: u64,
    /// The constant-honest price list.
    pub cost: CostModel,
    /// Also run the Theorem 4 `3/2`-approximation.
    pub include_approx: bool,
}

impl Default for CrossoverParams {
    fn default() -> Self {
        CrossoverParams {
            families: vec![Family::Sparse, Family::Tree],
            ns: vec![16, 24, 32, 48, 64],
            seed: 1,
            cost: CostModel::default(),
            include_approx: true,
        }
    }
}

/// One algorithm run, priced in real units.
#[derive(Clone, Debug, PartialEq)]
pub struct CostPoint {
    /// Graph family name.
    pub family: String,
    /// Nodes.
    pub n: usize,
    /// True diameter of the instance.
    pub d: u64,
    /// Algorithm identifier: `classical-apsp`, `quantum-exact`,
    /// `quantum-approx`.
    pub algo: String,
    /// Total CONGEST rounds (simulated plus Theorem 7 scheduled).
    pub rounds: u64,
    /// Classical messages delivered (simulated phases).
    pub classical_messages: u64,
    /// Classical payload bits delivered.
    pub classical_bits: u64,
    /// Quantum messages scheduled by charged oracle applications.
    pub quantum_messages: u64,
    /// Qubits communicated by charged oracle applications.
    pub qubit_sends: u64,
    /// Classical wire bits: payload plus per-message framing for every
    /// message, classical or quantum.
    pub wire_bits: u64,
    /// Total cost under the model: wire bits plus the qubit premium.
    pub cost_units: f64,
}

impl CostPoint {
    fn from_traffic(
        cost: &CostModel,
        classical_messages: u64,
        classical_bits: u64,
        quantum_messages: u64,
        qubit_sends: u64,
    ) -> (u64, f64) {
        let wire_bits = classical_bits + cost.header_bits * (classical_messages + quantum_messages);
        let cost_units = cost.cost_units(wire_bits, qubit_sends);
        (wire_bits, cost_units)
    }

    /// The value of a named metric, for crossover scans and fits.
    pub fn metric(&self, metric: &str) -> f64 {
        match metric {
            "rounds" => self.rounds as f64,
            "wire_bits" => self.wire_bits as f64,
            "qubit_sends" => self.qubit_sends as f64,
            "cost_units" => self.cost_units,
            other => panic!("unknown metric '{other}'"),
        }
    }
}

/// A least-squares power-law fit `metric ≈ e^intercept · n^slope` for one
/// `(family, algo)` series.
#[derive(Clone, Debug, PartialEq)]
pub struct Fit {
    /// Graph family.
    pub family: String,
    /// Algorithm.
    pub algo: String,
    /// Metric name.
    pub metric: String,
    /// Fitted exponent of `n`.
    pub slope: f64,
    /// Fitted `ln` of the constant factor.
    pub intercept: f64,
}

/// How (or whether) a quantum series crossed the classical baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossKind {
    /// Quantum beat classical at some swept `n`.
    Empirical,
    /// No crossover in the sweep, but the fitted quantum slope is smaller:
    /// the fits intersect at the projected `n`.
    Projected,
    /// The fitted slopes differ by less than [`SLOPE_EPS`] (or so little
    /// that the projected intersection overflows `f64`): the sweep cannot
    /// tell the growth rates apart, so no finite crossover is projected.
    IndistinguishableSlopes,
    /// Quantum does not cross (steeper slope and never cheaper).
    None,
}

impl CrossKind {
    /// Stable identifier used in the JSON artifact.
    pub fn as_str(&self) -> &'static str {
        match self {
            CrossKind::Empirical => "empirical",
            CrossKind::Projected => "projected",
            CrossKind::IndistinguishableSlopes => "indistinguishable-slopes",
            CrossKind::None => "none",
        }
    }
}

/// Slope differences at or below this are treated as *indistinguishable*:
/// the projected-intersection formula divides by the difference, so values
/// this small produce astronomically large (or non-finite) `n*` that say
/// nothing beyond "the fits are parallel to within noise".
pub const SLOPE_EPS: f64 = 1e-6;

/// The crossover verdict for one `(family, quantum algo, metric)` triple.
#[derive(Clone, Debug, PartialEq)]
pub struct Crossing {
    /// Graph family.
    pub family: String,
    /// The quantum series compared against `classical-apsp`.
    pub quantum_algo: String,
    /// Metric name.
    pub metric: String,
    /// Verdict.
    pub kind: CrossKind,
    /// Empirical: the smallest swept `n` where quantum won. Projected: the
    /// fitted intersection point.
    pub n: Option<f64>,
    /// `quantum / classical` at the largest swept `n` — the measured
    /// constant factor (values < 1 mean quantum is already cheaper).
    /// `None` when the classical metric is zero there (e.g. `qubit_sends`
    /// for a purely classical run): the ratio is undefined, not infinite.
    pub ratio_at_max_n: Option<f64>,
    /// For `cost_units` only: the qubit price at which the largest swept
    /// instance breaks even ([`CostModel::break_even_factor`]).
    pub break_even_qubit_factor: Option<f64>,
}

/// The full sweep result.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossoverReport {
    /// Echo of the sweep configuration.
    pub params: CrossoverParams,
    /// Every priced run.
    pub points: Vec<CostPoint>,
    /// Power-law fits per `(family, algo, metric)`.
    pub fits: Vec<Fit>,
    /// Verdicts per `(family, quantum algo, metric)`.
    pub crossings: Vec<Crossing>,
}

/// Metrics scanned for crossovers and fitted for slopes. `qubit_sends` is
/// identically zero for the classical baseline, so its fit is absent there
/// and its crossover ratio is undefined — the pipeline must degrade to
/// `null`s in the artifact, never NaN/∞ (pinned by regression test).
pub const METRICS: [&str; 4] = ["rounds", "wire_bits", "qubit_sends", "cost_units"];

/// Runs the sweep.
///
/// # Errors
///
/// Propagates graph-construction and algorithm errors as strings.
pub fn run(params: &CrossoverParams) -> Result<CrossoverReport, String> {
    if params.ns.is_empty() {
        return Err("crossover sweep needs at least one n".into());
    }
    if params.families.is_empty() {
        return Err("crossover sweep needs at least one family".into());
    }
    let mut points = Vec::new();
    for &family in &params.families {
        for &n in &params.ns {
            points.extend(sweep_point(params, family, n)?);
        }
    }
    let fits = compute_fits(&points);
    let crossings = compute_crossings(&points, &fits, &params.cost);
    Ok(CrossoverReport {
        params: params.clone(),
        points,
        fits,
        crossings,
    })
}

fn sweep_point(
    params: &CrossoverParams,
    family: Family,
    n: usize,
) -> Result<Vec<CostPoint>, String> {
    let opts = Options {
        family,
        n,
        seed: params.seed,
        ..Options::default()
    };
    let g = build_graph(&opts)?;
    let cfg = Config::for_graph(&g);
    let cost = &params.cost;
    let fam = family.name().to_string();
    let mut out = Vec::with_capacity(3);

    // Classical BFS-APSP baseline: everything is simulated traffic.
    let classical = classical::apsp::exact_diameter(&g, cfg)
        .map_err(|e| format!("classical-apsp on {fam} n={n}: {e}"))?;
    let d = u64::from(classical.diameter);
    let (c_msgs, c_bits) = (
        classical.ledger.total_messages(),
        classical.ledger.total_bits(),
    );
    let (wire, units) = CostPoint::from_traffic(cost, c_msgs, c_bits, 0, 0);
    out.push(CostPoint {
        family: fam.clone(),
        n,
        d,
        algo: "classical-apsp".into(),
        rounds: classical.rounds(),
        classical_messages: c_msgs,
        classical_bits: c_bits,
        quantum_messages: 0,
        qubit_sends: 0,
        wire_bits: wire,
        cost_units: units,
    });

    // Theorem 1 exact: the init ledger is classical traffic; the quantum
    // phase's traffic is charged applications × measured per-application
    // constants (probe/verification runs are diagnostics, not charged).
    let run = exact::diameter(&g, ExactParams::new(params.seed), cfg)
        .map_err(|e| format!("quantum-exact on {fam} n={n}: {e}"))?;
    let q_msgs = run.oracle_schedule.messages_for(&run.oracle);
    let qubits = run.oracle_schedule.qubits_for(&run.oracle);
    let (c_msgs, c_bits) = (
        run.init_ledger.total_messages(),
        run.init_ledger.total_bits(),
    );
    let (wire, units) = CostPoint::from_traffic(cost, c_msgs, c_bits, q_msgs, qubits);
    out.push(CostPoint {
        family: fam.clone(),
        n,
        d,
        algo: "quantum-exact".into(),
        rounds: run.rounds(),
        classical_messages: c_msgs,
        classical_bits: c_bits,
        quantum_messages: q_msgs,
        qubit_sends: qubits,
        wire_bits: wire,
        cost_units: units,
    });

    if params.include_approx {
        let run = approx::diameter(&g, ApproxParams::new(params.seed), cfg)
            .map_err(|e| format!("quantum-approx on {fam} n={n}: {e}"))?;
        let q_msgs = run.oracle_schedule.messages_for(&run.oracle);
        let qubits = run.oracle_schedule.qubits_for(&run.oracle);
        let (c_msgs, c_bits) = (
            run.prep_ledger.total_messages(),
            run.prep_ledger.total_bits(),
        );
        let (wire, units) = CostPoint::from_traffic(cost, c_msgs, c_bits, q_msgs, qubits);
        out.push(CostPoint {
            family: fam,
            n,
            d,
            algo: "quantum-approx".into(),
            rounds: run.rounds(),
            classical_messages: c_msgs,
            classical_bits: c_bits,
            quantum_messages: q_msgs,
            qubit_sends: qubits,
            wire_bits: wire,
            cost_units: units,
        });
    }
    Ok(out)
}

/// Series of one algorithm within one family, ascending in `n`.
fn series<'a>(points: &'a [CostPoint], family: &str, algo: &str) -> Vec<&'a CostPoint> {
    let mut s: Vec<&CostPoint> = points
        .iter()
        .filter(|p| p.family == family && p.algo == algo)
        .collect();
    s.sort_by_key(|p| p.n);
    s
}

fn algos(points: &[CostPoint]) -> Vec<String> {
    let mut v = Vec::new();
    for p in points {
        if !v.contains(&p.algo) {
            v.push(p.algo.clone());
        }
    }
    v
}

fn families(points: &[CostPoint]) -> Vec<String> {
    let mut v = Vec::new();
    for p in points {
        if !v.contains(&p.family) {
            v.push(p.family.clone());
        }
    }
    v
}

/// Least squares in `ln` space; skips non-positive values. Returns `None`
/// with fewer than two usable points.
fn loglog_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|&(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    Some((slope, my - slope * mx))
}

fn compute_fits(points: &[CostPoint]) -> Vec<Fit> {
    let mut fits = Vec::new();
    for family in families(points) {
        for algo in algos(points) {
            let s = series(points, &family, &algo);
            let xs: Vec<f64> = s.iter().map(|p| p.n as f64).collect();
            for metric in METRICS {
                let ys: Vec<f64> = s.iter().map(|p| p.metric(metric)).collect();
                if let Some((slope, intercept)) = loglog_fit(&xs, &ys) {
                    fits.push(Fit {
                        family: family.clone(),
                        algo: algo.clone(),
                        metric: metric.to_string(),
                        slope,
                        intercept,
                    });
                }
            }
        }
    }
    fits
}

fn find_fit<'a>(fits: &'a [Fit], family: &str, algo: &str, metric: &str) -> Option<&'a Fit> {
    fits.iter()
        .find(|f| f.family == family && f.algo == algo && f.metric == metric)
}

fn compute_crossings(points: &[CostPoint], fits: &[Fit], cost: &CostModel) -> Vec<Crossing> {
    let mut crossings = Vec::new();
    for family in families(points) {
        let classical = series(points, &family, "classical-apsp");
        if classical.is_empty() {
            continue;
        }
        for algo in algos(points) {
            if algo == "classical-apsp" {
                continue;
            }
            let quantum = series(points, &family, &algo);
            for metric in METRICS {
                // Pair up by n (both series sweep the same ns).
                let paired: Vec<(&CostPoint, &CostPoint)> = classical
                    .iter()
                    .filter_map(|c| quantum.iter().find(|q| q.n == c.n).map(|q| (*c, *q)))
                    .collect();
                let Some(&(last_c, last_q)) = paired.last() else {
                    continue;
                };
                // A zero classical baseline (qubit_sends on classical-apsp)
                // leaves the ratio undefined — `None`, never ∞ or NaN.
                let ratio = (last_c.metric(metric) > 0.0)
                    .then(|| last_q.metric(metric) / last_c.metric(metric));
                let empirical = paired
                    .iter()
                    .find(|(c, q)| q.metric(metric) < c.metric(metric));
                let (kind, at) = if let Some((c, _)) = empirical {
                    (CrossKind::Empirical, Some(c.n as f64))
                } else {
                    let pair = find_fit(fits, &family, "classical-apsp", metric)
                        .zip(find_fit(fits, &family, &algo, metric));
                    match pair {
                        Some((fc, fq)) => {
                            let diff = fc.slope - fq.slope;
                            if diff.abs() <= SLOPE_EPS {
                                // Dividing by a ~0 slope difference would
                                // project a meaningless (possibly infinite)
                                // n*; report the slopes as indistinguishable
                                // instead.
                                (CrossKind::IndistinguishableSlopes, None)
                            } else if diff > 0.0 {
                                // Quantum grows strictly slower: the fits
                                // intersect ahead — unless the intersection
                                // overflows f64, which is the same
                                // ill-conditioning in disguise.
                                let nstar = ((fq.intercept - fc.intercept) / diff).exp();
                                if nstar.is_finite() {
                                    (CrossKind::Projected, Some(nstar))
                                } else {
                                    (CrossKind::IndistinguishableSlopes, None)
                                }
                            } else {
                                (CrossKind::None, None)
                            }
                        }
                        None => (CrossKind::None, None),
                    }
                };
                let break_even = (metric == "cost_units")
                    .then(|| {
                        CostModel::break_even_factor(
                            last_c.wire_bits,
                            last_q.wire_bits,
                            last_q.qubit_sends,
                        )
                    })
                    .flatten();
                let _ = cost; // the model already priced the points
                crossings.push(Crossing {
                    family: family.clone(),
                    quantum_algo: algo.clone(),
                    metric: metric.to_string(),
                    kind,
                    n: at,
                    ratio_at_max_n: ratio,
                    break_even_qubit_factor: break_even,
                });
            }
        }
    }
    crossings
}

/// `Json::Float` for finite values, `Json::Null` otherwise: JSON has no
/// NaN/Infinity literals, and a poisoned float would make the whole
/// artifact unparseable downstream.
fn finite(v: f64) -> Json {
    if v.is_finite() {
        Json::Float(v)
    } else {
        Json::Null
    }
}

impl CrossoverReport {
    /// Renders the machine-readable artifact (`crossover.json`).
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj([
                    ("family", Json::Str(p.family.clone())),
                    ("n", Json::Int(p.n as i128)),
                    ("d", Json::Int(p.d as i128)),
                    ("algo", Json::Str(p.algo.clone())),
                    ("rounds", Json::Int(p.rounds as i128)),
                    (
                        "classical_messages",
                        Json::Int(p.classical_messages as i128),
                    ),
                    ("classical_bits", Json::Int(p.classical_bits as i128)),
                    ("quantum_messages", Json::Int(p.quantum_messages as i128)),
                    ("qubit_sends", Json::Int(p.qubit_sends as i128)),
                    ("wire_bits", Json::Int(p.wire_bits as i128)),
                    ("cost_units", finite(p.cost_units)),
                ])
            })
            .collect();
        let fits = self
            .fits
            .iter()
            .map(|f| {
                Json::obj([
                    ("family", Json::Str(f.family.clone())),
                    ("algo", Json::Str(f.algo.clone())),
                    ("metric", Json::Str(f.metric.clone())),
                    ("slope", finite(f.slope)),
                    ("intercept", finite(f.intercept)),
                ])
            })
            .collect();
        let crossings = self
            .crossings
            .iter()
            .map(|c| {
                Json::obj([
                    ("family", Json::Str(c.family.clone())),
                    ("quantum_algo", Json::Str(c.quantum_algo.clone())),
                    ("metric", Json::Str(c.metric.clone())),
                    ("kind", Json::Str(c.kind.as_str().into())),
                    ("n", c.n.map(finite).unwrap_or(Json::Null)),
                    (
                        "ratio_at_max_n",
                        c.ratio_at_max_n.map(finite).unwrap_or(Json::Null),
                    ),
                    (
                        "break_even_qubit_factor",
                        c.break_even_qubit_factor.map(finite).unwrap_or(Json::Null),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("experiment", Json::Str("crossover".into())),
            ("seed", Json::Int(self.params.seed as i128)),
            (
                "header_bits",
                Json::Int(self.params.cost.header_bits as i128),
            ),
            ("qubit_factor", finite(self.params.cost.qubit_factor)),
            ("points", Json::Arr(points)),
            ("fits", Json::Arr(fits)),
            ("crossings", Json::Arr(crossings)),
        ])
    }

    /// Renders the auto-generated Markdown report (`CROSSOVER.md`).
    pub fn render_markdown(&self) -> String {
        let mut md = String::new();
        let _ = writeln!(md, "# Classical vs quantum crossover report");
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "Auto-generated by the crossover engine (`qdiam crossover`). \
             Constant-honest cost model: {} header bits per message, qubit \
             factor {} (one communicated qubit costs as much as {} classical \
             wire bits). Seed {}.",
            self.params.cost.header_bits,
            self.params.cost.qubit_factor,
            self.params.cost.qubit_factor,
            self.params.seed
        );
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "Metrics: `rounds` (simulated + Theorem 7 scheduled), `wire_bits` \
             (payload + framing for every classical *and* quantum message), \
             `qubit_sends` (communicated qubits; identically zero for the \
             classical baseline), `cost_units` (wire bits + qubit premium)."
        );
        for family in families(&self.points) {
            let _ = writeln!(md, "\n## Family `{family}`\n");
            let algo_list = algos(&self.points);
            // Rounds table.
            let mut header = String::from("| n | D |");
            let mut rule = String::from("|---|---|");
            for a in &algo_list {
                let _ = write!(header, " {a} rounds |");
                rule.push_str("---|");
            }
            let _ = writeln!(md, "{header}\n{rule}");
            let classical = series(&self.points, &family, "classical-apsp");
            for c in &classical {
                let mut row = format!("| {} | {} |", c.n, c.d);
                for a in &algo_list {
                    match series(&self.points, &family, a).iter().find(|p| p.n == c.n) {
                        Some(p) => {
                            let _ = write!(row, " {} |", p.rounds);
                        }
                        None => row.push_str(" – |"),
                    }
                }
                let _ = writeln!(md, "{row}");
            }
            // Cost table.
            let _ = writeln!(md, "\n| n | algo | wire bits | qubit sends | cost units |");
            let _ = writeln!(md, "|---|---|---|---|---|");
            for c in &classical {
                for a in &algo_list {
                    if let Some(p) = series(&self.points, &family, a).iter().find(|p| p.n == c.n) {
                        let _ = writeln!(
                            md,
                            "| {} | {} | {} | {} | {:.0} |",
                            p.n, p.algo, p.wire_bits, p.qubit_sends, p.cost_units
                        );
                    }
                }
            }
            // Verdicts.
            let _ = writeln!(md, "\n### Crossovers vs `classical-apsp`\n");
            for c in self.crossings.iter().filter(|c| c.family == family) {
                let verdict = match c.kind {
                    CrossKind::Empirical => {
                        format!("**empirical crossover at n = {}**", c.n.unwrap_or(f64::NAN))
                    }
                    CrossKind::Projected => format!(
                        "no crossover in sweep; fits project n* ≈ {:.3e}",
                        c.n.unwrap_or(f64::NAN)
                    ),
                    CrossKind::IndistinguishableSlopes => {
                        "no crossover in sweep; fitted slopes are indistinguishable \
                         (|Δslope| ≤ 1e-6), so no finite intersection is projected"
                            .to_string()
                    }
                    CrossKind::None => "no crossover (quantum never cheaper in sweep, \
                                        steeper or unfitted slope)"
                        .to_string(),
                };
                let factor = match c.ratio_at_max_n {
                    Some(r) => format!("{r:.3}×"),
                    None => "undefined (classical baseline is zero)".to_string(),
                };
                let mut line = format!(
                    "- `{}` / `{}`: {verdict}; measured factor {factor} at n = {}",
                    c.quantum_algo,
                    c.metric,
                    self.params.ns.last().copied().unwrap_or(0),
                );
                if let Some(be) = c.break_even_qubit_factor {
                    let _ = write!(
                        line,
                        "; break-even qubit factor {be:.2} (quantum wins iff a qubit \
                         costs < {be:.2} classical bits)"
                    );
                }
                let _ = writeln!(md, "{line}");
            }
        }
        let _ = writeln!(md, "\n## Slope fits (extending Table 1)\n");
        let _ = writeln!(
            md,
            "| family | algo | metric | fitted slope | paper bound (rounds) |"
        );
        let _ = writeln!(md, "|---|---|---|---|---|");
        for f in &self.fits {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {:.3} | {} |",
                f.family,
                f.algo,
                f.metric,
                f.slope,
                paper_bound(&f.algo)
            );
        }
        let _ = writeln!(
            md,
            "\nSlopes are least-squares exponents of `metric ≈ C · n^slope` \
             over the swept sizes; `D` varies with the family, so \
             `√(nD)`-type bounds appear as family-dependent exponents."
        );
        md
    }

    /// Writes `crossover.json` and `CROSSOVER.md` into `dir` (created if
    /// missing); returns both paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_artifacts(&self, dir: impl AsRef<Path>) -> io::Result<(PathBuf, PathBuf)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join("crossover.json");
        std::fs::write(&json_path, self.to_json().render() + "\n")?;
        let md_path = dir.join("CROSSOVER.md");
        std::fs::write(&md_path, self.render_markdown())?;
        Ok((json_path, md_path))
    }
}

/// The paper's round bound for an algorithm, quoted in the slope table.
fn paper_bound(algo: &str) -> &'static str {
    match algo {
        "classical-apsp" => "Θ(n)",
        "quantum-exact" => "Õ(√(nD))",
        "quantum-approx" => "Õ(∛(nD) + D)",
        _ => "—",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CrossoverReport {
        run(&CrossoverParams {
            families: vec![Family::Path],
            ns: vec![8, 12, 16],
            seed: 3,
            cost: CostModel::default(),
            include_approx: false,
        })
        .unwrap()
    }

    #[test]
    fn sweep_produces_points_fits_and_crossings() {
        let report = tiny();
        assert_eq!(report.points.len(), 3 * 2, "2 algos × 3 sizes");
        // Every metric × quantum algo gets a verdict; fits cover every
        // series except classical `qubit_sends`, which is identically zero
        // and therefore unfittable in log-log space.
        assert_eq!(report.crossings.len(), METRICS.len());
        assert_eq!(report.fits.len(), 2 * METRICS.len() - 1);
        assert!(
            find_fit(&report.fits, "path", "classical-apsp", "qubit_sends").is_none(),
            "an all-zero series must not get a fit"
        );
        // Path diameters are n − 1.
        for p in &report.points {
            assert_eq!(p.d, p.n as u64 - 1, "{p:?}");
        }
        // Quantum points actually charge qubit traffic.
        assert!(report
            .points
            .iter()
            .filter(|p| p.algo == "quantum-exact")
            .all(|p| p.qubit_sends > 0 && p.quantum_messages > 0));
    }

    #[test]
    fn wire_bits_charge_headers_for_every_message() {
        let report = tiny();
        let h = report.params.cost.header_bits;
        for p in &report.points {
            assert_eq!(
                p.wire_bits,
                p.classical_bits + h * (p.classical_messages + p.quantum_messages),
                "{p:?}"
            );
            let expected =
                p.wire_bits as f64 + p.qubit_sends as f64 * report.params.cost.qubit_factor;
            assert!((p.cost_units - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn json_artifact_is_schema_shaped() {
        let report = tiny();
        let json = report.to_json();
        assert_eq!(
            json.get("experiment").and_then(Json::as_str),
            Some("crossover")
        );
        let rendered = json.render();
        let back = Json::parse(&rendered).expect("round-trips");
        assert_eq!(
            back.get("points").map(|p| matches!(p, Json::Arr(_))),
            Some(true)
        );
        assert!(back.get("fits").is_some());
        assert!(back.get("crossings").is_some());
    }

    #[test]
    fn markdown_report_has_tables_and_verdicts() {
        let report = tiny();
        let md = report.render_markdown();
        assert!(md.contains("# Classical vs quantum crossover report"));
        assert!(md.contains("## Family `path`"));
        assert!(md.contains("| n | D |"));
        assert!(md.contains("### Crossovers vs `classical-apsp`"));
        assert!(md.contains("## Slope fits (extending Table 1)"));
        assert!(md.contains("Õ(√(nD))"));
    }

    #[test]
    fn loglog_fit_recovers_power_laws() {
        let xs: Vec<f64> = (1..=6).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x.sqrt()).collect();
        let (slope, intercept) = loglog_fit(&xs, &ys).unwrap();
        assert!((slope - 0.5).abs() < 1e-9);
        assert!((intercept - 5.0f64.ln()).abs() < 1e-9);
        assert!(loglog_fit(&[1.0], &[2.0]).is_none());
        assert!(loglog_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    /// Regression: a metric that is identically zero on the classical
    /// baseline (`qubit_sends`) must not poison the artifact with NaN or
    /// ±∞ — the ratio degrades to `null` and the verdict stays typed.
    #[test]
    fn classical_zero_metric_never_yields_nan() {
        let report = tiny();
        let qubit_crossing = report
            .crossings
            .iter()
            .find(|c| c.metric == "qubit_sends")
            .expect("qubit_sends is scanned");
        assert_eq!(
            qubit_crossing.ratio_at_max_n, None,
            "ratio against a zero baseline must be undefined, not ∞"
        );
        assert_eq!(qubit_crossing.kind, CrossKind::None);
        for c in &report.crossings {
            if let Some(r) = c.ratio_at_max_n {
                assert!(r.is_finite(), "{c:?}");
            }
            if let Some(n) = c.n {
                assert!(n.is_finite(), "{c:?}");
            }
        }
        let rendered = report.to_json().render();
        for poison in ["NaN", "nan", "Infinity", "inf"] {
            assert!(!rendered.contains(poison), "artifact contains {poison}");
        }
        Json::parse(&rendered).expect("artifact parses despite zero-valued series");
        // The Markdown path must survive the undefined ratio too.
        assert!(report
            .render_markdown()
            .contains("undefined (classical baseline is zero)"));
    }

    fn synthetic_point(algo: &str, n: usize, rounds: u64) -> CostPoint {
        CostPoint {
            family: "synthetic".into(),
            n,
            d: 1,
            algo: algo.into(),
            rounds,
            classical_messages: 1,
            classical_bits: 8,
            quantum_messages: 0,
            qubit_sends: 0,
            wire_bits: 8,
            cost_units: 8.0,
        }
    }

    /// A ~0 slope difference must produce the `indistinguishable-slopes`
    /// verdict instead of dividing by (almost) zero and projecting a
    /// meaningless or infinite `n*`.
    #[test]
    fn near_equal_slopes_are_reported_as_indistinguishable() {
        let points = vec![
            synthetic_point("classical-apsp", 8, 100),
            synthetic_point("classical-apsp", 16, 200),
            synthetic_point("quantum-exact", 8, 150),
            synthetic_point("quantum-exact", 16, 300),
        ];
        let mk_fit = |algo: &str, metric: &str, slope: f64, intercept: f64| Fit {
            family: "synthetic".into(),
            algo: algo.into(),
            metric: metric.into(),
            slope,
            intercept,
        };
        let fits = vec![
            mk_fit("classical-apsp", "rounds", 1.0, 2.0),
            // Quantum's fitted slope differs by less than SLOPE_EPS and its
            // intercept is higher: the old formula projected
            // exp(huge) = ∞ here.
            mk_fit("quantum-exact", "rounds", 1.0 + SLOPE_EPS / 2.0, 2.5),
        ];
        let crossings = compute_crossings(&points, &fits, &CostModel::default());
        let rounds = crossings
            .iter()
            .find(|c| c.metric == "rounds")
            .expect("rounds verdict");
        assert_eq!(rounds.kind, CrossKind::IndistinguishableSlopes);
        assert_eq!(rounds.n, None);
        assert_eq!(rounds.ratio_at_max_n, Some(1.5));
        // Metrics with no fits at all stay `None`, not a crash.
        let wire = crossings.iter().find(|c| c.metric == "wire_bits").unwrap();
        assert_eq!(wire.kind, CrossKind::None);
    }

    /// The classical baseline is Θ(n) rounds; the Theorem 1 algorithm is
    /// Õ(√(nD)). On a path D = n−1, so quantum rounds grow ~n while the
    /// classical baseline also grows ~n — but on a low-diameter family the
    /// quantum slope must come out strictly smaller.
    #[test]
    fn quantum_round_slope_beats_classical_on_low_diameter_family() {
        let report = run(&CrossoverParams {
            families: vec![Family::Er],
            ns: vec![24, 40, 64, 96],
            seed: 5,
            cost: CostModel::default(),
            include_approx: false,
        })
        .unwrap();
        let fc = find_fit(&report.fits, "er", "classical-apsp", "rounds").unwrap();
        let fq = find_fit(&report.fits, "er", "quantum-exact", "rounds").unwrap();
        assert!(
            fq.slope < fc.slope,
            "quantum slope {} should be below classical {}",
            fq.slope,
            fc.slope
        );
    }
}
