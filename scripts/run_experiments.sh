#!/usr/bin/env bash
# Regenerates every table/figure experiment and collects the outputs under
# results/. Scale up the sweeps with: QD_SCALE=4 scripts/run_experiments.sh
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p bench --bins
for bin in table1_exact table1_approx table1_lower_bounds \
           fig1_bfs fig2_evaluation fig3_approx_phases fig4_hw_gadget \
           fig5_7_simulation fig8_stretched_gadget \
           ablation_window memory_scaling qdisj_protocol; do
  echo "=== $bin ==="
  ./target/release/$bin | tee "results/$bin.txt"
done
echo "all experiment outputs written to results/"
