#!/usr/bin/env bash
# Regenerates every table/figure experiment and collects the outputs under
# results/. Scale up the sweeps with: QD_SCALE=4 scripts/run_experiments.sh
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p bench --bins

failures=0
for bin in table1_exact table1_approx table1_lower_bounds \
           fig1_bfs fig2_evaluation fig3_approx_phases fig4_hw_gadget \
           fig5_7_simulation fig8_stretched_gadget \
           ablation_window memory_scaling qdisj_protocol; do
  echo "=== $bin ==="
  if ! ./target/release/$bin | tee "results/$bin.txt"; then
    echo "FAILED: $bin" >&2
    failures=$((failures + 1))
  fi
done

# The structured-output harnesses must also have written machine-readable
# results (bench::write_results_json); a missing file means the run died
# before its sweep finished.
for name in table1_exact table1_approx table1_lower_bounds fig2_evaluation; do
  if [ ! -s "results/$name.json" ]; then
    echo "FAILED: results/$name.json missing or empty" >&2
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "$failures experiment(s) failed" >&2
  exit 1
fi
echo "all experiment outputs written to results/ (*.txt tables, *.json structured)"
