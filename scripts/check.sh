#!/usr/bin/env bash
# Repo health gate: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

if cargo fmt --version >/dev/null 2>&1; then
  echo "=== cargo fmt --check ==="
  cargo fmt --all --check || status=1
else
  echo "=== cargo fmt not installed; skipping format check ==="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "=== cargo clippy ==="
  cargo clippy --workspace --all-targets --offline -- -D warnings || status=1
else
  echo "=== cargo clippy not installed; skipping lint check ==="
fi

echo "=== rustdoc (warnings are errors) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet || status=1

echo "=== tier-1: cargo build --release && cargo test ==="
cargo build --release --offline || status=1
cargo test -q --offline || status=1

echo "=== workspace tests ==="
cargo test -q --offline --workspace || status=1

echo "=== shard + scheduling equivalence (QD_TEST_SHARDS=4) ==="
QD_TEST_SHARDS=4 cargo test -q --offline -p congest-diameter \
  --test property -- sharded scheduling || status=1
QD_TEST_SHARDS=4 cargo test -q --offline -p congest-diameter \
  --test failure_injection faulty_runs || status=1

echo "=== recovery equivalence + contract suite (QD_TEST_SHARDS=4) ==="
QD_TEST_SHARDS=4 cargo test -q --offline -p congest-diameter \
  --test recovery || status=1

echo "=== fault matrix smoke (detection latency + recovery cost) ==="
fdir=$(mktemp -d)
QD_RESULTS_DIR="$fdir" cargo run -q --release --offline -p bench \
  --bin fault_matrix >/dev/null || status=1
if ! test -s "$fdir/fault_matrix.json"; then
  echo "fault_matrix.json missing" >&2
  status=1
else
  for key in '"experiment":"fault_matrix"' '"recovery_policy"' '"recovery_cells"' \
    '"recovered"' '"unsound"' '"mean_retries"' '"mean_recovery_rounds"' \
    '"wasted_wire_bits"'; do
    grep -qF "$key" "$fdir/fault_matrix.json" \
      || { echo "fault_matrix.json missing key $key" >&2; status=1; }
  done
  # Recovery-cost means must be finite numbers, never NaN/null.
  if grep -qE '"mean_(retries|recovery_rounds)":(null|NaN)' "$fdir/fault_matrix.json"; then
    echo "fault_matrix.json has non-finite recovery-cost fields" >&2
    status=1
  fi
fi
rm -rf "$fdir"

echo "=== scheduler bench smoke (dense-vs-sparse + <5% overhead gates) ==="
# The vendored criterion stub runs every group once in --test mode; the
# Instant-based gates (tracing_overhead, scheduler_hot_loop, the
# scheduler_sparse speedup/overhead pair, and the flight-recorder <5%
# overhead gate on the n = 10^5 path flood) always run, and
# scheduler_sparse writes BENCH_scheduler.json at the repo root.
cargo bench -q --offline -p bench --bench bench_substrate -- --test || status=1
test -s BENCH_scheduler.json || { echo "BENCH_scheduler.json missing" >&2; status=1; }
# bench_substrate's metrics_overhead group also asserts the <5% gate on the
# disabled-metrics path, so this smoke doubles as the cost-metrics gate.

echo "=== crossover smoke (artifacts + schema) ==="
xdir=$(mktemp -d)
cargo run -q --release --offline -p congest-diameter --bin qdiam -- \
  crossover --families sparse --ns 16,24 --seed 1 --out "$xdir" \
  --metrics "$xdir/metrics.prom" >/dev/null || status=1
test -s "$xdir/crossover.json" || { echo "crossover.json missing" >&2; status=1; }
test -s "$xdir/CROSSOVER.md" || { echo "CROSSOVER.md missing" >&2; status=1; }
test -s "$xdir/metrics.prom" || { echo "metrics.prom missing" >&2; status=1; }
for key in '"experiment":"crossover"' '"points"' '"fits"' '"crossings"'; do
  grep -qF "$key" "$xdir/crossover.json" \
    || { echo "crossover.json missing key $key" >&2; status=1; }
done
grep -qF '### Crossovers vs `classical-apsp`' "$xdir/CROSSOVER.md" \
  || { echo "CROSSOVER.md missing verdict section" >&2; status=1; }
grep -q '^# TYPE qd_messages_total counter' "$xdir/metrics.prom" \
  || { echo "metrics.prom missing qd_messages_total" >&2; status=1; }
rm -rf "$xdir"

echo "=== scale smoke (n = 10⁴) + BENCH_scale.json schema ==="
sdir=$(mktemp -d)
QD_MAX_N=10000 QD_RESULTS_DIR="$sdir" cargo run -q --release --offline -p bench \
  --bin scale >/dev/null || status=1
# The smoke output proves the generator works; the repo-root artifact is
# the committed full sweep (n up to 10⁶). Both must carry the schema.
for f in "$sdir/BENCH_scale.json" BENCH_scale.json; do
  if ! test -s "$f"; then
    echo "$f missing" >&2
    status=1
    continue
  fi
  for key in '"experiment":"scale"' '"points"' '"rounds_per_sec"' '"bytes_per_node"'; do
    grep -qF "$key" "$f" || { echo "$f missing key $key" >&2; status=1; }
  done
done

echo "=== driver throughput smoke (n = 1024) + BENCH_drivers.json gates ==="
ddir=$(mktemp -d)
QD_MAX_N=1024 QD_RESULTS_DIR="$ddir" cargo run -q --release --offline -p bench \
  --bin drivers >/dev/null || status=1
# The smoke output proves the generator (and its in-bin Dense/ActiveSet
# output-identity assertion) works; the repo-root artifact is the committed
# full sweep (n up to 16384). Both must carry the schema.
for f in "$ddir/BENCH_drivers.json" BENCH_drivers.json; do
  if ! test -s "$f"; then
    echo "$f missing" >&2
    status=1
    continue
  fi
  for key in '"experiment":"drivers"' '"points"' '"speedup"' '"active_fraction"' \
    '"waves_speedup_at_max_n"'; do
    grep -qF "$key" "$f" || { echo "$f missing key $key" >&2; status=1; }
  done
done
# Perf gates on the committed full sweep only (the capped smoke is too
# noise-prone to gate on): waves at the largest swept n must beat forced
# Dense by >= 2x, and no workload may be more than 5% slower under
# ActiveSet + fast-forward.
if test -s BENCH_drivers.json && jq --version >/dev/null 2>&1; then
  jq -e '.waves_speedup_at_max_n >= 2' BENCH_drivers.json >/dev/null \
    || { echo "BENCH_drivers.json: waves speedup at max n below 2x" >&2; status=1; }
  jq -e '[.points[].speedup] | min >= 0.95' BENCH_drivers.json >/dev/null \
    || { echo "BENCH_drivers.json: a workload is >5% slower than Dense" >&2; status=1; }
fi

echo "=== qdiam report schema smoke ==="
rdir=$(mktemp -d)
cargo run -q --release --offline -p congest-diameter --bin qdiam -- \
  report classical --family path --n 64 --out "$rdir" >/dev/null || status=1
rpt="$rdir/REPORT_classical_path_n64.md"
if ! test -s "$rpt"; then
  echo "$rpt missing" >&2
  status=1
else
  for key in '# qdiam run report' '## Run summary' '## Critical path' \
    '- longest causal message chain:' '## Timeline' 'flight recorder:' \
    '## Cost totals' 'qd_messages_total' '## Recovery'; do
    grep -qF -- "$key" "$rpt" || { echo "$rpt missing section $key" >&2; status=1; }
  done
fi
rm -rf "$rdir"

echo "=== benchdiff: committed artifacts vs fresh smoke runs ==="
# The capped smokes above rerun a subset of the committed sweeps; benchdiff
# compares the intersection. Tolerance 75%: the gate is for order-of-
# magnitude regressions, and the single-vCPU containers this runs on are
# far too noisy for anything tighter.
scripts/benchdiff -t 75 BENCH_scale.json "$sdir/BENCH_scale.json" || status=1
scripts/benchdiff -t 75 BENCH_drivers.json "$ddir/BENCH_drivers.json" || status=1
rm -rf "$sdir" "$ddir"

if [ "$status" -ne 0 ]; then
  echo "CHECK FAILED" >&2
  exit 1
fi
echo "all checks passed"
