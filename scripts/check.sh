#!/usr/bin/env bash
# Repo health gate: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

if cargo fmt --version >/dev/null 2>&1; then
  echo "=== cargo fmt --check ==="
  cargo fmt --all --check || status=1
else
  echo "=== cargo fmt not installed; skipping format check ==="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "=== cargo clippy ==="
  cargo clippy --workspace --all-targets --offline -- -D warnings || status=1
else
  echo "=== cargo clippy not installed; skipping lint check ==="
fi

echo "=== tier-1: cargo build --release && cargo test ==="
cargo build --release --offline || status=1
cargo test -q --offline || status=1

echo "=== workspace tests ==="
cargo test -q --offline --workspace || status=1

if [ "$status" -ne 0 ]; then
  echo "CHECK FAILED" >&2
  exit 1
fi
echo "all checks passed"
