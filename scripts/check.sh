#!/usr/bin/env bash
# Repo health gate: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

if cargo fmt --version >/dev/null 2>&1; then
  echo "=== cargo fmt --check ==="
  cargo fmt --all --check || status=1
else
  echo "=== cargo fmt not installed; skipping format check ==="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "=== cargo clippy ==="
  cargo clippy --workspace --all-targets --offline -- -D warnings || status=1
else
  echo "=== cargo clippy not installed; skipping lint check ==="
fi

echo "=== rustdoc (warnings are errors) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet || status=1

echo "=== tier-1: cargo build --release && cargo test ==="
cargo build --release --offline || status=1
cargo test -q --offline || status=1

echo "=== workspace tests ==="
cargo test -q --offline --workspace || status=1

echo "=== shard + scheduling equivalence (QD_TEST_SHARDS=4) ==="
QD_TEST_SHARDS=4 cargo test -q --offline -p congest-diameter \
  --test property -- sharded scheduling || status=1
QD_TEST_SHARDS=4 cargo test -q --offline -p congest-diameter \
  --test failure_injection faulty_runs || status=1

echo "=== scheduler bench smoke (dense-vs-sparse + <5% overhead gates) ==="
# The vendored criterion stub runs every group once in --test mode; the
# Instant-based gates (tracing_overhead, scheduler_hot_loop, and the
# scheduler_sparse speedup/overhead pair) always run, and scheduler_sparse
# writes BENCH_scheduler.json at the repo root.
cargo bench -q --offline -p bench --bench bench_substrate -- --test || status=1
test -s BENCH_scheduler.json || { echo "BENCH_scheduler.json missing" >&2; status=1; }

if [ "$status" -ne 0 ]; then
  echo "CHECK FAILED" >&2
  exit 1
fi
echo "all checks passed"
